package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{CapacityBytes: 0, LineBytes: 16, Assoc: 4},
		{CapacityBytes: 4096, LineBytes: 0, Assoc: 4},
		{CapacityBytes: 4096, LineBytes: 16, Assoc: 0},
		{CapacityBytes: 4095, LineBytes: 16, Assoc: 4},
		{CapacityBytes: 4096, LineBytes: 16, Assoc: 3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New should reject invalid config", i)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	if c.Sets() != 4096/16/4 {
		t.Errorf("Sets = %d, want %d", c.Sets(), 4096/16/4)
	}
	if c.String() == "" {
		t.Error("String should not be empty")
	}
	if c.Config() != DefaultConfig() {
		t.Error("Config not preserved")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	if c.Access(0x100) {
		t.Error("first access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access should hit")
	}
	// Same line, different byte within the line: still a hit.
	if !c.Access(0x10F) {
		t.Error("same-line access should hit")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("hit ratio = %v", got)
	}
}

func TestHitRatioEmpty(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Error("hit ratio of empty stats should be 0")
	}
}

func TestLRUReplacementWithinSet(t *testing.T) {
	// 4 sets, 2-way: capacity 8 lines of 16 bytes = 128 bytes.
	c := mustNew(t, Config{CapacityBytes: 128, LineBytes: 16, Assoc: 2})
	// Three addresses mapping to the same set (set = lineAddr % 4).
	a := uint64(0 * 16 * 4)
	b := uint64(1 * 16 * 4)
	d := uint64(2 * 16 * 4)
	c.Access(a) // miss, resident {a}
	c.Access(b) // miss, resident {a,b}
	c.Access(a) // hit, a most recent
	c.Access(d) // miss, must evict LRU = b
	if !c.Contains(a) {
		t.Error("a should still be resident (was most recently used)")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted as LRU")
	}
	if !c.Contains(d) {
		t.Error("d should be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestDistinctSetsDoNotConflict(t *testing.T) {
	c := mustNew(t, Config{CapacityBytes: 128, LineBytes: 16, Assoc: 2})
	// Fill lines mapping to different sets; none should evict each other.
	for i := 0; i < 4; i++ {
		c.Access(uint64(i * 16))
	}
	for i := 0; i < 4; i++ {
		if !c.Contains(uint64(i * 16)) {
			t.Errorf("line %d should be resident", i)
		}
	}
	if c.Stats().Evictions != 0 {
		t.Errorf("evictions = %d, want 0", c.Stats().Evictions)
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	c.Access(0x40)
	if c.ResidentLines() != 1 {
		t.Fatalf("resident = %d", c.ResidentLines())
	}
	c.Flush()
	if c.ResidentLines() != 0 {
		t.Error("flush should empty the cache")
	}
	if c.Access(0x40) {
		t.Error("access after flush should miss")
	}
}

func TestResetStats(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	c.Access(0x40)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("ResetStats should clear counters")
	}
	if !c.Contains(0x40) {
		t.Error("ResetStats should not flush contents")
	}
}

func TestLoopWorkingSetHitsAfterWarmup(t *testing.T) {
	// A tight loop over a working set that fits entirely in the cache should
	// approach a hit ratio of 1 (the paper's tight-loop argument, §6.2).
	c := mustNew(t, DefaultConfig())
	loopBytes := 1024
	for pass := 0; pass < 20; pass++ {
		for addr := 0; addr < loopBytes; addr += 4 {
			c.Access(uint64(addr))
		}
	}
	if hr := c.Stats().HitRatio(); hr < 0.95 {
		t.Errorf("tight-loop hit ratio = %v, want >= 0.95", hr)
	}
}

func TestThrashingWorkingSetMisses(t *testing.T) {
	// A working set much larger than the cache touched with no reuse inside
	// the cache's reach should have a low hit ratio.
	c := mustNew(t, Config{CapacityBytes: 256, LineBytes: 16, Assoc: 4})
	for i := 0; i < 10000; i++ {
		c.Access(uint64(i * 16)) // every access a new line
	}
	if hr := c.Stats().HitRatio(); hr > 0.01 {
		t.Errorf("streaming hit ratio = %v, want ~0", hr)
	}
}

// Property: resident line count never exceeds capacity, and accesses =
// hits + misses.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, addrs []uint16) bool {
		cfg := Config{CapacityBytes: 512, LineBytes: 16, Assoc: 4}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		for i := 0; i < 200; i++ {
			c.Access(uint64(rng.Intn(1 << 14)))
		}
		st := c.Stats()
		maxLines := cfg.CapacityBytes / cfg.LineBytes
		return c.ResidentLines() <= maxLines && st.Accesses == st.Hits+st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: an access immediately repeated is always a hit.
func TestQuickRepeatHits(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	f := func(addr uint32) bool {
		c.Access(uint64(addr))
		return c.Access(uint64(addr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c, _ := New(DefaultConfig())
	c.Access(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0)
	}
}

func BenchmarkAccessMixed(b *testing.B) {
	c, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(64 << 10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}
