// Package cache implements the set-associative instruction cache with LRU
// replacement used as the paper's third organisation ("A UHM equipped with a
// cache", §7): a transparent cache on the level-2 memory that buffers DIR
// instructions but still forces every instruction to be decoded on every
// execution.
//
// The organisation follows the conventional designs the paper cites (Conti,
// Kaplan & Winder, Meade): the address is hashed to a set, the set is
// searched associatively, and the least-recently-used line of the set is
// replaced on a miss.  Set associativity of degree 4 "has been found to be
// nearly as effective as full associativity".
package cache
