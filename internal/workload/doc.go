// Package workload supplies the programs and reference-stream generators the
// experiments run on:
//
//   - a library of MiniLang source programs chosen to exercise the behaviours
//     the paper's argument rests on — tight loops (high locality), deep
//     recursion and call-heavy code (working-set churn), array sweeps and
//     mixed arithmetic — standing in for the FORTRAN/ALGOL-style programs of
//     the era;
//   - synthetic DIR-address reference streams with controllable locality,
//     used to sweep hit ratio against buffer size (the statistic the paper
//     takes from the cache literature: h_c = 0.9 and h_D = 0.8 at 4 KiB);
//   - Denning working-set analysis over reference streams.
package workload
