package workload

import (
	"reflect"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/dir"
)

func TestNamesAndSources(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 workloads, got %v", names)
	}
	for _, name := range names {
		src, err := Source(name)
		if err != nil || src == "" {
			t.Errorf("Source(%q): %v", name, err)
		}
	}
	if _, err := Source("nonexistent"); err == nil {
		t.Error("unknown workload should fail")
	}
	if _, err := Parse("nonexistent"); err == nil {
		t.Error("Parse of unknown workload should fail")
	}
	if _, err := CompileAt("nonexistent", compile.LevelStack); err == nil {
		t.Error("CompileAt of unknown workload should fail")
	}
	if _, err := ReferenceOutput("nonexistent"); err == nil {
		t.Error("ReferenceOutput of unknown workload should fail")
	}
}

func TestEveryWorkloadCompilesAndRunsAtEveryLevel(t *testing.T) {
	for _, name := range Names() {
		want, err := ReferenceOutput(name)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: reference output is empty; every workload must print something", name)
		}
		for _, level := range compile.Levels() {
			t.Run(name+"/"+level.String(), func(t *testing.T) {
				dp, err := CompileAt(name, level)
				if err != nil {
					t.Fatal(err)
				}
				res, err := dir.Execute(dp, dir.ExecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Output, want) {
					t.Errorf("output = %v, want %v", res.Output, want)
				}
			})
		}
	}
}

func TestKnownOutputs(t *testing.T) {
	cases := map[string][]int64{
		"fib":       {377},   // fib(14)
		"sieve":     {31},    // primes below 128
		"ackermann": {9, 61}, // ack(2,3), ack(3,3)
	}
	for name, want := range cases {
		got, err := ReferenceOutput(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s output = %v, want %v", name, got, want)
		}
	}
}

func TestMustCompileAt(t *testing.T) {
	if p := MustCompileAt("fib", compile.LevelMem3); p == nil || len(p.Instrs) == 0 {
		t.Error("MustCompileAt returned an empty program")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompileAt should panic for unknown workloads")
		}
	}()
	MustCompileAt("nonexistent", compile.LevelStack)
}

func TestSyntheticTraceValidation(t *testing.T) {
	if err := DefaultTraceConfig().Validate(); err != nil {
		t.Fatalf("default trace config invalid: %v", err)
	}
	bad := []TraceConfig{
		{Length: 0, AddressSpace: 10, WorkingSet: 5, PhaseLength: 10},
		{Length: 10, AddressSpace: 0, WorkingSet: 5, PhaseLength: 10},
		{Length: 10, AddressSpace: 10, WorkingSet: 20, PhaseLength: 10},
		{Length: 10, AddressSpace: 10, WorkingSet: 5, PhaseLength: 0},
		{Length: 10, AddressSpace: 10, WorkingSet: 5, PhaseLength: 10, JumpProb: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
		if _, err := SyntheticTrace(c); err == nil {
			t.Errorf("case %d: SyntheticTrace should reject invalid config", i)
		}
	}
}

func TestSyntheticTraceProperties(t *testing.T) {
	cfg := DefaultTraceConfig()
	trace, err := SyntheticTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != cfg.Length {
		t.Fatalf("trace length = %d", len(trace))
	}
	for _, a := range trace {
		if a >= uint64(cfg.AddressSpace) {
			t.Fatalf("address %d outside address space", a)
		}
	}
	// Determinism: same seed, same trace.
	again, _ := SyntheticTrace(cfg)
	if !reflect.DeepEqual(trace, again) {
		t.Error("traces with the same seed should be identical")
	}
	other := cfg
	other.Seed = 99
	different, _ := SyntheticTrace(other)
	if reflect.DeepEqual(trace, different) {
		t.Error("traces with different seeds should differ")
	}
}

func TestWorkingSetAnalysis(t *testing.T) {
	cfg := DefaultTraceConfig()
	trace, err := SyntheticTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := WorkingSetSizes(trace, 1000)
	if len(sizes) != cfg.Length/1000 {
		t.Fatalf("working set windows = %d", len(sizes))
	}
	avg := AverageWorkingSet(trace, 1000)
	// The working set must be far smaller than the address space (that is
	// the locality the DTB exploits) but at least as large as a good chunk
	// of the configured working set.
	if avg >= float64(cfg.AddressSpace)/4 {
		t.Errorf("average working set %v too close to the address space %d", avg, cfg.AddressSpace)
	}
	if avg < float64(cfg.WorkingSet)/2 {
		t.Errorf("average working set %v suspiciously small for configured %d", avg, cfg.WorkingSet)
	}
	if WorkingSetSizes(nil, 100) != nil || WorkingSetSizes(trace, 0) != nil {
		t.Error("degenerate working-set queries should return nil")
	}
	if AverageWorkingSet(nil, 100) != 0 {
		t.Error("empty trace average should be 0")
	}
}

func TestLowLocalityTraceHasLargerWorkingSet(t *testing.T) {
	local := DefaultTraceConfig()
	scattered := local
	scattered.WorkingSet = scattered.AddressSpace
	scattered.JumpProb = 1.0
	lt, err := SyntheticTrace(local)
	if err != nil {
		t.Fatal(err)
	}
	st, err := SyntheticTrace(scattered)
	if err != nil {
		t.Fatal(err)
	}
	if AverageWorkingSet(st, 1000) <= AverageWorkingSet(lt, 1000) {
		t.Error("a scattered trace should have a larger working set than a local one")
	}
}

func BenchmarkSyntheticTrace(b *testing.B) {
	cfg := DefaultTraceConfig()
	cfg.Length = 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SyntheticTrace(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestArchetypeCatalogue checks the workload-level archetype catalogue stays
// in lockstep with the generator's and that generation round-trips through it.
func TestArchetypeCatalogue(t *testing.T) {
	infos := Archetypes()
	if len(infos) < 4 {
		t.Fatalf("expected >= 4 archetypes, got %d", len(infos))
	}
	names := ArchetypeNames()
	if len(names) != len(infos) {
		t.Fatalf("ArchetypeNames (%d) and Archetypes (%d) disagree", len(names), len(infos))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("catalogue order mismatch at %d: %q vs %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("archetype %q has no description", info.Name)
		}
		p, err := GenerateArchetype(info.Name, 1)
		if err != nil {
			t.Errorf("GenerateArchetype(%q, 1): %v", info.Name, err)
			continue
		}
		if p.Archetype != info.Name || len(p.Output) == 0 {
			t.Errorf("GenerateArchetype(%q, 1) = %q with %d outputs", info.Name, p.Archetype, len(p.Output))
		}
	}
	if _, err := GenerateArchetype("no-such-profile", 1); err == nil {
		t.Error("GenerateArchetype accepted an unknown archetype")
	}
}
