package gen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	uhr "uhm/internal/hlr"
)

// failsWhen builds a FailFunc that holds when the program is valid (parses,
// analyses, runs cleanly on the oracle) and the predicate on its source and
// output holds.  Validity gating mirrors how the conformance harness treats
// candidates: a program that no longer runs is useless as a reproducer.
func failsWhen(t *testing.T, pred func(src string, output []int64) bool) FailFunc {
	t.Helper()
	return func(src string) bool {
		prog, err := uhr.Parse(src)
		if err != nil {
			return false
		}
		res, err := uhr.Evaluate(prog, uhr.EvalOptions{MaxSteps: 2_000_000})
		if err != nil {
			return false
		}
		return pred(src, res.Output)
	}
}

// TestMinimizeShrinksGeneratedProgram minimizes a generated program against a
// synthetic failure ("output contains a negative value") and checks the
// result is a much smaller program that still fails.
func TestMinimizeShrinksGeneratedProgram(t *testing.T) {
	var p *Program
	var err error
	// Find a seed whose output has a negative value, so the predicate holds.
	for seed := int64(1); seed <= 50; seed++ {
		p, err = Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		neg := false
		for _, v := range p.Output {
			if v < 0 {
				neg = true
			}
		}
		if neg {
			break
		}
		p = nil
	}
	if p == nil {
		t.Fatal("no seed in 1..50 printed a negative value")
	}
	fails := failsWhen(t, func(_ string, output []int64) bool {
		for _, v := range output {
			if v < 0 {
				return true
			}
		}
		return false
	})
	min, err := Minimize(p.Source, fails)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !fails(min) {
		t.Fatalf("minimized program no longer fails:\n%s", min)
	}
	if len(min) >= len(p.Source) {
		t.Errorf("minimized program is not smaller: %d bytes vs %d", len(min), len(p.Source))
	}
	// The synthetic failure has tiny witnesses; a working minimizer gets far
	// below half the original size.
	if len(min) > len(p.Source)/2 {
		t.Errorf("weak minimization: %d of %d bytes:\n%s", len(min), len(p.Source), min)
	}
}

// TestMinimizeHandCrafted checks the minimizer strips everything irrelevant
// to a targeted failure in a hand-written program.
func TestMinimizeHandCrafted(t *testing.T) {
	src := `
program big;
var a[16], x, y, i;
proc noise(n);
begin
  if n <= 0 then return 0;
  return noise(n - 1) + 1
end;
begin
  x := noise(5);
  i := 0;
  while i < 16 do
  begin
    a[i] := i * i;
    i := i + 1
  end;
  y := 7 mod -2;
  print a[3];
  print y;
  print x
end.`
	// Failure: the program prints the value 1 somewhere (7 mod -2 = 1).
	fails := failsWhen(t, func(_ string, output []int64) bool {
		for _, v := range output {
			if v == 1 {
				return true
			}
		}
		return false
	})
	if !fails(src) {
		t.Fatal("hand-crafted program does not fail its own predicate")
	}
	min, err := Minimize(src, fails)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !fails(min) {
		t.Fatalf("minimized program no longer fails:\n%s", min)
	}
	if strings.Contains(min, "while") || strings.Contains(min, "proc") {
		t.Errorf("minimizer kept irrelevant structure:\n%s", min)
	}
	if len(min) > 120 {
		t.Errorf("expected a tiny reproducer, got %d bytes:\n%s", len(min), min)
	}
}

// compoundsOf collects every begin/end list reachable from a block: the main
// body, procedure bodies, and the bodies nested under ifs and whiles.
func compoundsOf(blk *uhr.Block) []*uhr.CompoundStmt {
	var out []*uhr.CompoundStmt
	var fromStmt func(s uhr.Stmt)
	fromStmt = func(s uhr.Stmt) {
		switch x := s.(type) {
		case *uhr.CompoundStmt:
			out = append(out, x)
			for _, inner := range x.Stmts {
				fromStmt(inner)
			}
		case *uhr.IfStmt:
			fromStmt(x.Then)
			fromStmt(x.Else)
		case *uhr.WhileStmt:
			fromStmt(x.Body)
		}
	}
	for _, pd := range blk.Procs {
		out = append(out, compoundsOf(pd.Body)...)
	}
	fromStmt(blk.Body)
	return out
}

// TestMinimizeProperty is the property test over the generator populations:
// for seeded programs from the uniform generator and every archetype, a
// divergence-shaped mutation (a sentinel print spliced into a random
// begin/end list, standing in for the wrong-value output a real divergence
// produces) must survive minimization — the minimized program still parses,
// still runs cleanly on the oracle, still emits the sentinel, and is no
// larger than the mutant it came from.
func TestMinimizeProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	populations := append([]string{""}, ArchetypeNames()...)
	for _, archetype := range populations {
		for _, seed := range seeds {
			name := "uniform"
			if archetype != "" {
				name = archetype
			}
			t.Run(fmt.Sprintf("%s/%d", name, seed), func(t *testing.T) {
				t.Parallel()
				var p *Program
				var err error
				if archetype == "" {
					p, err = Generate(seed)
				} else {
					var a Archetype
					a, err = ArchetypeByName(archetype)
					if err == nil {
						p, err = a.Generate(seed)
					}
				}
				if err != nil {
					t.Fatalf("generate: %v", err)
				}

				// Splice the sentinel print at a seeded position.  The value is
				// far outside what generated programs print, so "output contains
				// the sentinel" is an honest stand-in for a divergence signature.
				const sentinel = 88_000_001
				for _, v := range p.Output {
					if v == sentinel {
						t.Fatalf("seed %d: program already prints the sentinel", seed)
					}
				}
				prog, err := uhr.Parse(p.Source)
				if err != nil {
					t.Fatalf("reparse: %v", err)
				}
				rng := rand.New(rand.NewSource(seed * 7919))
				comps := compoundsOf(prog.Block)
				c := comps[rng.Intn(len(comps))]
				at := rng.Intn(len(c.Stmts) + 1)
				stmt := &uhr.PrintStmt{Value: &uhr.NumberLit{Value: sentinel}}
				c.Stmts = append(c.Stmts[:at:at], append([]uhr.Stmt{stmt}, c.Stmts[at:]...)...)
				mutated := uhr.Format(prog)

				fails := failsWhen(t, func(_ string, output []int64) bool {
					for _, v := range output {
						if v == sentinel {
							return true
						}
					}
					return false
				})
				if !fails(mutated) {
					// The splice point can be dead code (inside an untaken branch
					// or an unreached procedure); that mutant carries no failure,
					// so there is nothing for the minimizer to preserve.
					t.Skip("mutation landed in dead code")
				}

				min, err := Minimize(mutated, fails)
				if err != nil {
					t.Fatalf("Minimize: %v", err)
				}
				if !fails(min) {
					t.Fatalf("minimized program no longer reproduces the divergence:\n%s", min)
				}
				minProg, err := uhr.Parse(min)
				if err != nil {
					t.Fatalf("minimized program does not parse: %v\n%s", err, min)
				}
				res, err := uhr.Evaluate(minProg, uhr.EvalOptions{MaxSteps: 2_000_000})
				if err != nil {
					t.Fatalf("minimized program fails the oracle: %v\n%s", err, min)
				}
				found := false
				for _, v := range res.Output {
					if v == sentinel {
						found = true
					}
				}
				if !found {
					t.Fatalf("minimized program lost the sentinel output:\n%s", min)
				}
				if len(min) > len(mutated) {
					t.Errorf("minimized program grew: %d bytes vs %d", len(min), len(mutated))
				}
				// The witness is one print statement: a working minimizer strips
				// the bulk of the generated program around it.
				if len(min) > len(mutated)/2 {
					t.Errorf("weak minimization: %d of %d bytes:\n%s", len(min), len(mutated), min)
				}
			})
		}
	}
}

// TestMinimizeRejectsNonFailing checks the contract on non-failing input.
func TestMinimizeRejectsNonFailing(t *testing.T) {
	src := "program p;\nbegin\n  print 1\nend.\n"
	if _, err := Minimize(src, func(string) bool { return false }); err == nil {
		t.Error("Minimize on a non-failing source succeeded, want error")
	}
}
