package gen

import (
	"strings"
	"testing"

	uhr "uhm/internal/hlr"
)

// failsWhen builds a FailFunc that holds when the program is valid (parses,
// analyses, runs cleanly on the oracle) and the predicate on its source and
// output holds.  Validity gating mirrors how the conformance harness treats
// candidates: a program that no longer runs is useless as a reproducer.
func failsWhen(t *testing.T, pred func(src string, output []int64) bool) FailFunc {
	t.Helper()
	return func(src string) bool {
		prog, err := uhr.Parse(src)
		if err != nil {
			return false
		}
		res, err := uhr.Evaluate(prog, uhr.EvalOptions{MaxSteps: 2_000_000})
		if err != nil {
			return false
		}
		return pred(src, res.Output)
	}
}

// TestMinimizeShrinksGeneratedProgram minimizes a generated program against a
// synthetic failure ("output contains a negative value") and checks the
// result is a much smaller program that still fails.
func TestMinimizeShrinksGeneratedProgram(t *testing.T) {
	var p *Program
	var err error
	// Find a seed whose output has a negative value, so the predicate holds.
	for seed := int64(1); seed <= 50; seed++ {
		p, err = Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		neg := false
		for _, v := range p.Output {
			if v < 0 {
				neg = true
			}
		}
		if neg {
			break
		}
		p = nil
	}
	if p == nil {
		t.Fatal("no seed in 1..50 printed a negative value")
	}
	fails := failsWhen(t, func(_ string, output []int64) bool {
		for _, v := range output {
			if v < 0 {
				return true
			}
		}
		return false
	})
	min, err := Minimize(p.Source, fails)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !fails(min) {
		t.Fatalf("minimized program no longer fails:\n%s", min)
	}
	if len(min) >= len(p.Source) {
		t.Errorf("minimized program is not smaller: %d bytes vs %d", len(min), len(p.Source))
	}
	// The synthetic failure has tiny witnesses; a working minimizer gets far
	// below half the original size.
	if len(min) > len(p.Source)/2 {
		t.Errorf("weak minimization: %d of %d bytes:\n%s", len(min), len(p.Source), min)
	}
}

// TestMinimizeHandCrafted checks the minimizer strips everything irrelevant
// to a targeted failure in a hand-written program.
func TestMinimizeHandCrafted(t *testing.T) {
	src := `
program big;
var a[16], x, y, i;
proc noise(n);
begin
  if n <= 0 then return 0;
  return noise(n - 1) + 1
end;
begin
  x := noise(5);
  i := 0;
  while i < 16 do
  begin
    a[i] := i * i;
    i := i + 1
  end;
  y := 7 mod -2;
  print a[3];
  print y;
  print x
end.`
	// Failure: the program prints the value 1 somewhere (7 mod -2 = 1).
	fails := failsWhen(t, func(_ string, output []int64) bool {
		for _, v := range output {
			if v == 1 {
				return true
			}
		}
		return false
	})
	if !fails(src) {
		t.Fatal("hand-crafted program does not fail its own predicate")
	}
	min, err := Minimize(src, fails)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !fails(min) {
		t.Fatalf("minimized program no longer fails:\n%s", min)
	}
	if strings.Contains(min, "while") || strings.Contains(min, "proc") {
		t.Errorf("minimizer kept irrelevant structure:\n%s", min)
	}
	if len(min) > 120 {
		t.Errorf("expected a tiny reproducer, got %d bytes:\n%s", len(min), min)
	}
}

// TestMinimizeRejectsNonFailing checks the contract on non-failing input.
func TestMinimizeRejectsNonFailing(t *testing.T) {
	src := "program p;\nbegin\n  print 1\nend.\n"
	if _, err := Minimize(src, func(string) bool { return false }); err == nil {
		t.Error("Minimize on a non-failing source succeeded, want error")
	}
}
