package gen

import "testing"

func TestGeneratePartialConfig(t *testing.T) {
	p, err := (Config{StmtBudget: 50}).Generate(1)
	if err != nil {
		t.Fatalf("partial config: %v", err)
	}
	if len(p.Output) == 0 {
		t.Error("partial config produced no output")
	}
}
