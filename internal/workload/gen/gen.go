package gen

import (
	"fmt"
	"math/rand"

	"uhm/internal/hlr"
)

// Config bounds the shape of generated programs.
type Config struct {
	// MaxProcs is the maximum number of procedures besides the main body.
	MaxProcs int
	// MaxProcDepth is the maximum static nesting depth of procedures.
	MaxProcDepth int
	// MaxStmtDepth caps statement nesting (if/while bodies).
	MaxStmtDepth int
	// MaxExprDepth caps expression-tree depth.
	MaxExprDepth int
	// MaxBlockStmts caps the statements generated per block.
	MaxBlockStmts int
	// StmtBudget caps the total number of statements in the program.
	StmtBudget int
	// MaxLoopBound is the largest loop-iteration literal.
	MaxLoopBound int64
	// MaxFuel is the largest recursion fuel a main-body call passes.
	MaxFuel int64
	// MaxArraySize bounds declared array sizes.
	MaxArraySize int64
	// OracleMaxSteps is the validation step budget on the hlr evaluator;
	// candidates that exceed it are regenerated.
	OracleMaxSteps int64
	// MaxAttempts bounds validation retries before Generate gives up.
	MaxAttempts int
}

// DefaultConfig returns the generator bounds used by the conformance harness.
func DefaultConfig() Config {
	return Config{
		MaxProcs:       4,
		MaxProcDepth:   3,
		MaxStmtDepth:   4,
		MaxExprDepth:   4,
		MaxBlockStmts:  5,
		StmtBudget:     90,
		MaxLoopBound:   6,
		MaxFuel:        4,
		MaxArraySize:   9,
		OracleMaxSteps: 2_000_000,
		MaxAttempts:    32,
	}
}

// Program is one generated workload.
type Program struct {
	// Name is the program's MiniLang name (derived from the seed).
	Name string
	// Archetype names the profile that produced the program; empty for the
	// uniform generator.
	Archetype string
	// Seed reproduces the program via Generate(seed) (or, when Archetype is
	// set, via ArchetypeByName(Archetype).Generate(seed)).
	Seed int64
	// Source is the MiniLang source text.
	Source string
	// Output is the reference output from the validation run.
	Output []int64
	// OracleSteps is the step count of the validation run.
	OracleSteps int64
}

// Generate produces the program for a seed under the default configuration.
func Generate(seed int64) (*Program, error) {
	return DefaultConfig().Generate(seed)
}

// normalized returns the configuration with zero or out-of-range fields
// replaced by DefaultConfig values, so a partially filled Config cannot panic
// the generator's bounded random draws.
func (cfg Config) normalized() Config {
	def := DefaultConfig()
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = def.MaxAttempts
	}
	if cfg.MaxProcs < 0 {
		cfg.MaxProcs = def.MaxProcs
	}
	if cfg.MaxProcDepth < 1 {
		cfg.MaxProcDepth = def.MaxProcDepth
	}
	if cfg.MaxStmtDepth < 1 {
		cfg.MaxStmtDepth = def.MaxStmtDepth
	}
	if cfg.MaxExprDepth < 1 {
		cfg.MaxExprDepth = def.MaxExprDepth
	}
	if cfg.MaxBlockStmts < 1 {
		cfg.MaxBlockStmts = def.MaxBlockStmts
	}
	if cfg.StmtBudget < 1 {
		cfg.StmtBudget = def.StmtBudget
	}
	if cfg.MaxLoopBound < 1 {
		cfg.MaxLoopBound = def.MaxLoopBound
	}
	if cfg.MaxFuel < 1 {
		cfg.MaxFuel = def.MaxFuel
	}
	if cfg.MaxArraySize < 3 {
		cfg.MaxArraySize = def.MaxArraySize
	}
	if cfg.OracleMaxSteps < 1 {
		cfg.OracleMaxSteps = def.OracleMaxSteps
	}
	return cfg
}

// Generate produces the program for a seed: deterministic for a given
// (Config, seed) pair.  Zero or out-of-range fields fall back to
// DefaultConfig values.
func (cfg Config) Generate(seed int64) (*Program, error) {
	name := fmt.Sprintf("gen%d", seed)
	return cfg.generate(seed, name, "", func(g *generator) *hlr.Program {
		return g.program(name)
	})
}

// generate is the shared candidate-validate-retry loop: build draws one
// candidate AST from the generator's seeded stream, and the candidate is kept
// only if it parses, runs cleanly on the hlr oracle within the validation
// budget and prints at least one value.
func (cfg Config) generate(seed int64, name, archetype string, build func(*generator) *hlr.Program) (*Program, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(seed))
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		g := &generator{cfg: cfg, rng: rng}
		ast := build(g)
		src := hlr.Format(ast)
		prog, err := hlr.Parse(src)
		if err != nil {
			lastErr = fmt.Errorf("gen: seed %d attempt %d: generated unparsable source: %w", seed, attempt, err)
			continue
		}
		res, err := hlr.Evaluate(prog, hlr.EvalOptions{MaxSteps: cfg.OracleMaxSteps})
		if err != nil {
			lastErr = fmt.Errorf("gen: seed %d attempt %d: oracle rejected program: %w", seed, attempt, err)
			continue
		}
		if len(res.Output) == 0 {
			lastErr = fmt.Errorf("gen: seed %d attempt %d: program printed nothing", seed, attempt)
			continue
		}
		return &Program{
			Name:        name,
			Archetype:   archetype,
			Seed:        seed,
			Source:      src,
			Output:      res.Output,
			OracleSteps: res.Steps,
		}, nil
	}
	return nil, fmt.Errorf("gen: seed %d: no valid program in %d attempts: %w", seed, cfg.MaxAttempts, lastErr)
}

// scope tracks what a block being generated may reference.
type scope struct {
	parent *scope
	proc   *procCtx
}

// procCtx is the generation-time description of one procedure (or main).
type procCtx struct {
	name   string
	parent *procCtx
	depth  int
	params []string // params[0] is the fuel parameter for non-main procs
	// scalars are the assignable scalars declared here: non-fuel parameters
	// and locals.  The fuel parameter (params[0]) is read-only by
	// construction — assigning it would break the strict fuel decrease the
	// termination argument rests on — and loop counters are their own class.
	scalars []string
	loops   []string // dedicated loop counters (assigned only by their loop's init/step)
	arrays  []arrayDecl
	procs   []*procCtx // directly nested procedures
	body    *hlr.CompoundStmt
	isMain  bool
}

type arrayDecl struct {
	name string
	size int64
}

type generator struct {
	cfg     Config
	rng     *rand.Rand
	budget  int
	nameSeq int
	// perBody is the statement budget granted to each procedure body.
	perBody int
	// loopDepth counts enclosing generated loops, to cap loop nesting cost;
	// activeLoops lists the counters currently driving enclosing loops.
	loopDepth   int
	activeLoops []string
	// w, when non-nil, replaces the uniform statement distribution with an
	// archetype's weighted one.  The default generator leaves it nil, so its
	// random-draw sequence — and therefore every pinned seed — is unchanged.
	w *Weights
}

func (g *generator) freshName(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *generator) intn(n int) int { return g.rng.Intn(n) }

// lit returns a literal expression node.
func lit(v int64) hlr.Expr {
	if v < 0 {
		return &hlr.UnaryExpr{Op: hlr.OpNeg, Operand: &hlr.NumberLit{Value: -v}}
	}
	return &hlr.NumberLit{Value: v}
}

func ref(name string) hlr.Expr { return &hlr.VarRef{Name: name} }

func bin(op hlr.BinOp, l, r hlr.Expr) hlr.Expr {
	return &hlr.BinaryExpr{Op: op, Left: l, Right: r}
}

// program generates the whole AST: a procedure tree, then every body.
func (g *generator) program(name string) *hlr.Program {
	main := &procCtx{name: name, isMain: true}
	// Global state: a few scalars, loop counters and up to two arrays.
	for i, n := 0, 2+g.intn(3); i < n; i++ {
		main.scalars = append(main.scalars, g.freshName("g"))
	}
	for i, n := 0, 1+g.intn(2); i < n; i++ {
		main.loops = append(main.loops, g.freshName("li"))
	}
	for i, n := 0, g.intn(3); i < n; i++ {
		main.arrays = append(main.arrays, arrayDecl{name: g.freshName("arr"), size: 3 + int64(g.intn(int(g.cfg.MaxArraySize-2)))})
	}

	// Grow the procedure tree: each new procedure nests under main or an
	// existing procedure that has not reached the depth cap.
	nprocs := g.intn(g.cfg.MaxProcs + 1)
	all := []*procCtx{main}
	for i := 0; i < nprocs; i++ {
		var candidates []*procCtx
		for _, p := range all {
			if p.depth < g.cfg.MaxProcDepth {
				candidates = append(candidates, p)
			}
		}
		parent := candidates[g.intn(len(candidates))]
		p := &procCtx{name: g.freshName("p"), parent: parent, depth: parent.depth + 1}
		p.params = append(p.params, g.freshName("fuel"))
		for j, n := 0, g.intn(3); j < n; j++ {
			p.params = append(p.params, g.freshName("t"))
		}
		p.scalars = append(p.scalars, p.params[1:]...)
		for j, n := 0, g.intn(3); j < n; j++ {
			p.scalars = append(p.scalars, g.freshName("v"))
		}
		if g.intn(2) == 0 {
			p.loops = append(p.loops, g.freshName("li"))
		}
		if g.intn(3) == 0 {
			p.arrays = append(p.arrays, arrayDecl{name: g.freshName("arr"), size: 3 + int64(g.intn(int(g.cfg.MaxArraySize-2)))})
		}
		parent.procs = append(parent.procs, p)
		all = append(all, p)
	}

	// Generate bodies.  Each body gets its own slice of the statement budget,
	// so deeply nested procedures cannot starve the main body (which drives
	// all the calls) of statements.
	g.perBody = max(8, g.cfg.StmtBudget/(nprocs+1))
	g.bodies(main, &scope{proc: main})

	return &hlr.Program{Name: name, Block: g.blockOf(main)}
}

// blockOf converts a generated procCtx tree into hlr Block nodes.
func (g *generator) blockOf(p *procCtx) *hlr.Block {
	blk := &hlr.Block{Body: p.body}
	for _, s := range p.scalars {
		if p.isMain || !contains(p.params, s) {
			blk.Vars = append(blk.Vars, &hlr.VarDecl{Name: s})
		}
	}
	for _, lv := range p.loops {
		blk.Vars = append(blk.Vars, &hlr.VarDecl{Name: lv})
	}
	for _, a := range p.arrays {
		blk.Vars = append(blk.Vars, &hlr.VarDecl{Name: a.name, Size: a.size})
	}
	for _, child := range p.procs {
		blk.Procs = append(blk.Procs, &hlr.ProcDecl{
			Name:   child.name,
			Params: child.params,
			Body:   g.blockOf(child),
		})
	}
	return blk
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// bodies generates the body of p and, recursively, of its nested procedures.
func (g *generator) bodies(p *procCtx, sc *scope) {
	for _, child := range p.procs {
		g.bodies(child, &scope{parent: sc, proc: child})
	}
	g.budget = g.perBody
	var stmts []hlr.Stmt
	if !p.isMain {
		// The termination guard: every procedure body opens with it.
		stmts = append(stmts, g.guardStmt(p))
	}
	stmts = append(stmts, g.stmtList(sc, 0)...)
	if p.isMain {
		stmts = g.epilogue(p, stmts)
	} else if g.intn(2) == 0 {
		stmts = append(stmts, &hlr.ReturnStmt{Value: g.expr(sc, 0)})
	}
	p.body = &hlr.CompoundStmt{Stmts: stmts}
}

// epilogue appends the main-body observability prints: every global scalar
// and a probe of each array, so any state divergence across the stack becomes
// an output divergence.
func (g *generator) epilogue(p *procCtx, stmts []hlr.Stmt) []hlr.Stmt {
	for _, s := range p.scalars {
		stmts = append(stmts, &hlr.PrintStmt{Value: ref(s)})
	}
	for _, a := range p.arrays {
		stmts = append(stmts, &hlr.PrintStmt{Value: &hlr.VarRef{Name: a.name, Index: lit(int64(g.intn(int(a.size))))}})
		stmts = append(stmts, &hlr.PrintStmt{Value: &hlr.VarRef{Name: a.name, Index: lit(a.size - 1)}})
	}
	return stmts
}

// guardStmt is the termination guard every generated procedure body opens
// with: if the fuel parameter is exhausted, return immediately.
func (g *generator) guardStmt(p *procCtx) hlr.Stmt {
	return &hlr.IfStmt{
		Cond: bin(hlr.OpLe, ref(p.params[0]), lit(0)),
		Then: &hlr.ReturnStmt{Value: lit(int64(g.intn(7)) - 3)},
	}
}

// stmtList generates a bounded statement list at the given nesting depth.
func (g *generator) stmtList(sc *scope, depth int) []hlr.Stmt {
	n := 1 + g.intn(g.cfg.MaxBlockStmts)
	var out []hlr.Stmt
	for i := 0; i < n && g.budget > 0; i++ {
		out = append(out, g.stmt(sc, depth))
	}
	return out
}

// stmtKind is a production of the statement grammar; the uniform and weighted
// distributions both resolve to one of these before emission.
type stmtKind int

const (
	kindAssign stmtKind = iota
	kindArrayAssign
	kindPrint
	kindIf
	kindLoop
	kindCall
)

// pickStmtKind draws the next statement production: uniformly when no weights
// are installed (preserving the historical distribution draw-for-draw), by
// weighted roulette otherwise.
func (g *generator) pickStmtKind() stmtKind {
	if g.w == nil {
		switch g.intn(10) {
		case 0, 1, 2:
			return kindAssign
		case 3:
			return kindArrayAssign
		case 4:
			return kindPrint
		case 5, 6:
			return kindIf
		case 7, 8:
			return kindLoop
		default:
			return kindCall
		}
	}
	w := g.w
	total := w.Assign + w.ArrayAssign + w.Print + w.If + w.Loop + w.Call
	r := g.intn(total)
	if r -= w.Assign; r < 0 {
		return kindAssign
	}
	if r -= w.ArrayAssign; r < 0 {
		return kindArrayAssign
	}
	if r -= w.Print; r < 0 {
		return kindPrint
	}
	if r -= w.If; r < 0 {
		return kindIf
	}
	if r -= w.Loop; r < 0 {
		return kindLoop
	}
	return kindCall
}

// stmt generates one statement.
func (g *generator) stmt(sc *scope, depth int) hlr.Stmt {
	g.budget--
	deep := depth >= g.cfg.MaxStmtDepth || g.budget <= 0
	for {
		switch g.pickStmtKind() {
		case kindAssign: // scalar assignment
			if target, ok := g.assignableScalar(sc); ok {
				return &hlr.AssignStmt{Target: target, Value: g.expr(sc, 0)}
			}
		case kindArrayAssign: // array element assignment
			if arr, ok := g.visibleArray(sc); ok {
				return &hlr.AssignStmt{
					Target: arr.name,
					Index:  g.index(sc, arr.size),
					Value:  g.expr(sc, 0),
				}
			}
		case kindPrint: // print
			return &hlr.PrintStmt{Value: g.expr(sc, 0)}
		case kindIf: // if / if-else
			if deep {
				continue
			}
			s := &hlr.IfStmt{
				Cond: g.expr(sc, 0),
				Then: &hlr.CompoundStmt{Stmts: g.stmtList(sc, depth+1)},
			}
			if g.intn(2) == 0 {
				s.Else = &hlr.CompoundStmt{Stmts: g.stmtList(sc, depth+1)}
			}
			return s
		case kindLoop: // bounded while
			if deep || g.loopDepth >= 3 {
				continue
			}
			if s, ok := g.boundedLoop(sc, depth); ok {
				return s
			}
		case kindCall: // call statement
			if call, ok := g.callTo(sc, 0); ok {
				return &hlr.CallStmt{Name: call.Name, Args: call.Args}
			}
		}
	}
}

// boundedLoop emits the guaranteed-terminating loop form over a dedicated
// loop counter of the current procedure.  It returns false when every counter
// of the procedure is already driving an enclosing loop.
func (g *generator) boundedLoop(sc *scope, depth int) (hlr.Stmt, bool) {
	var free []string
	for _, lv := range sc.proc.loops {
		if !g.loopActive(lv) {
			free = append(free, lv)
		}
	}
	if len(free) == 0 {
		return nil, false
	}
	lv := free[g.intn(len(free))]
	g.activeLoops = append(g.activeLoops, lv)
	g.loopDepth++
	bound := 1 + int64(g.intn(int(g.cfg.MaxLoopBound)))
	step := 1 + int64(g.intn(3))
	body := g.stmtList(sc, depth+1)
	body = append(body, &hlr.AssignStmt{Target: lv, Value: bin(hlr.OpAdd, ref(lv), lit(step))})
	g.loopDepth--
	g.activeLoops = g.activeLoops[:len(g.activeLoops)-1]
	return &hlr.CompoundStmt{Stmts: []hlr.Stmt{
		&hlr.AssignStmt{Target: lv, Value: lit(int64(g.intn(2)))},
		&hlr.WhileStmt{
			Cond: bin(hlr.OpLt, ref(lv), lit(bound)),
			Body: &hlr.CompoundStmt{Stmts: body},
		},
	}}, true
}

func (g *generator) loopActive(lv string) bool { return contains(g.activeLoops, lv) }

// assignableScalar picks a visible scalar that is not a loop counter.  Loop
// counters are a dedicated name class precisely so no statement — not even an
// up-level assignment from a nested procedure — can interfere with a loop
// bound established anywhere up the call chain.
func (g *generator) assignableScalar(sc *scope) (string, bool) {
	var candidates []string
	for s := sc; s != nil; s = s.parent {
		candidates = append(candidates, s.proc.scalars...)
	}
	if len(candidates) == 0 {
		return "", false
	}
	return candidates[g.intn(len(candidates))], true
}

// readableScalar picks any visible scalar — loop counters and fuel
// parameters included.
func (g *generator) readableScalar(sc *scope) (string, bool) {
	var candidates []string
	for s := sc; s != nil; s = s.parent {
		candidates = append(candidates, s.proc.scalars...)
		candidates = append(candidates, s.proc.loops...)
		if !s.proc.isMain {
			candidates = append(candidates, s.proc.params[0])
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	return candidates[g.intn(len(candidates))], true
}

func (g *generator) visibleArray(sc *scope) (arrayDecl, bool) {
	var candidates []arrayDecl
	for s := sc; s != nil; s = s.parent {
		candidates = append(candidates, s.proc.arrays...)
	}
	if len(candidates) == 0 {
		return arrayDecl{}, false
	}
	return candidates[g.intn(len(candidates))], true
}

// visibleProcs lists the procedures callable from the scope: for each scope
// on the static chain, its directly nested procedures (all of which are
// declared before any body is analysed, so sibling calls — and therefore
// mutual recursion — are legal).
func (g *generator) visibleProcs(sc *scope) []*procCtx {
	var out []*procCtx
	for s := sc; s != nil; s = s.parent {
		out = append(out, s.proc.procs...)
	}
	return out
}

// callTo builds a call to a visible procedure with a fuel-decreasing first
// argument, or reports that no procedure is callable.
func (g *generator) callTo(sc *scope, exprDepth int) (*hlr.CallExpr, bool) {
	procs := g.visibleProcs(sc)
	if len(procs) == 0 {
		return nil, false
	}
	target := procs[g.intn(len(procs))]
	var fuel hlr.Expr
	if sc.proc.isMain {
		fuel = lit(1 + int64(g.intn(int(g.cfg.MaxFuel))))
	} else {
		fuel = bin(hlr.OpSub, ref(sc.proc.params[0]), lit(1))
	}
	args := []hlr.Expr{fuel}
	for range target.params[1:] {
		args = append(args, g.expr(sc, exprDepth+1))
	}
	return &hlr.CallExpr{Name: target.name, Args: args}, true
}

// index wraps an arbitrary expression into [0, size):
// ((e mod size + size) mod size).
func (g *generator) index(sc *scope, size int64) hlr.Expr {
	switch g.intn(3) {
	case 0:
		return lit(int64(g.intn(int(size))))
	default:
		e := g.expr(sc, 1)
		return bin(hlr.OpMod, bin(hlr.OpAdd, bin(hlr.OpMod, e, lit(size)), lit(size)), lit(size))
	}
}

// divisor builds an expression that cannot evaluate to zero: a non-zero
// literal (negative ones included) or the odd form 2*(e)±1, which remains odd
// — hence non-zero — under int64 wraparound.
func (g *generator) divisor(sc *scope, depth int) hlr.Expr {
	switch g.intn(3) {
	case 0:
		v := int64(1 + g.intn(9))
		if g.intn(2) == 0 {
			v = -v
		}
		return lit(v)
	case 1:
		return bin(hlr.OpAdd, bin(hlr.OpMul, lit(2), g.expr(sc, depth+1)), lit(1))
	default:
		return bin(hlr.OpSub, bin(hlr.OpMul, lit(2), g.expr(sc, depth+1)), lit(1))
	}
}

// expr generates an expression at the given depth.
func (g *generator) expr(sc *scope, depth int) hlr.Expr {
	if depth >= g.cfg.MaxExprDepth {
		return g.leaf(sc)
	}
	switch g.intn(12) {
	case 0, 1:
		return g.leaf(sc)
	case 2, 3: // + -
		op := hlr.OpAdd
		if g.intn(2) == 0 {
			op = hlr.OpSub
		}
		return bin(op, g.expr(sc, depth+1), g.expr(sc, depth+1))
	case 4:
		return bin(hlr.OpMul, g.expr(sc, depth+1), g.expr(sc, depth+1))
	case 5: // div / mod with a guaranteed non-zero divisor
		op := hlr.OpDiv
		if g.intn(2) == 0 {
			op = hlr.OpMod
		}
		return bin(op, g.expr(sc, depth+1), g.divisor(sc, depth))
	case 6: // comparison
		ops := []hlr.BinOp{hlr.OpEq, hlr.OpNe, hlr.OpLt, hlr.OpLe, hlr.OpGt, hlr.OpGe}
		return bin(ops[g.intn(len(ops))], g.expr(sc, depth+1), g.expr(sc, depth+1))
	case 7: // boolean connectives
		op := hlr.OpAnd
		if g.intn(2) == 0 {
			op = hlr.OpOr
		}
		return bin(op, g.expr(sc, depth+1), g.expr(sc, depth+1))
	case 8:
		return &hlr.UnaryExpr{Op: hlr.OpNeg, Operand: g.expr(sc, depth+1)}
	case 9:
		return &hlr.UnaryExpr{Op: hlr.OpNot, Operand: g.expr(sc, depth+1)}
	case 10: // array read
		if arr, ok := g.visibleArray(sc); ok {
			return &hlr.VarRef{Name: arr.name, Index: g.index(sc, arr.size)}
		}
		return g.leaf(sc)
	default: // function-style call
		if g.w != nil && g.w.CallExpr == 0 {
			return g.leaf(sc)
		}
		if call, ok := g.callTo(sc, depth); ok {
			return call
		}
		return g.leaf(sc)
	}
}

// leaf generates a literal or a variable read.
func (g *generator) leaf(sc *scope) hlr.Expr {
	if g.intn(2) == 0 {
		return lit(int64(g.intn(120)) - 20)
	}
	if name, ok := g.readableScalar(sc); ok {
		return ref(name)
	}
	return lit(int64(g.intn(120)) - 20)
}
