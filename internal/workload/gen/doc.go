// Package gen is a seeded, deterministic random MiniLang program generator
// and the differential-testing companion tools around it (a divergence
// minimizer lives in minimize.go).
//
// Every generated program is statically guaranteed to terminate:
//
//   - loops only take the bounded form "lv := c0; while lv < c1 do begin ...;
//     lv := lv + c2 end" where lv is a dedicated loop counter that no other
//     statement in the whole program may assign (loop counters form their own
//     name class, so not even an up-level store from a nested procedure can
//     reset one), c1 is a small literal and c2 is a positive literal;
//   - every procedure takes a fuel parameter as its first argument and opens
//     with "if fuel <= 0 then return c"; every call inside a procedure passes
//     fuel - 1 and every call from the main body passes a small literal, so
//     any call chain — including mutual recursion between sibling procedures
//     — strictly decreases fuel and the activation depth is bounded;
//   - statement and expression nesting are depth-capped, and a whole-program
//     statement budget caps program size.
//
// Division and modulo never trap: a divisor is either a non-zero literal
// (negative ones included, to exercise truncation-toward-zero semantics on
// negative operands) or the form 2*(e)+1 / 2*(e)-1, which is odd — hence
// non-zero — for every int64 value of e, including after wraparound.
//
// Array subscripts are wrapped as ((e mod size + size) mod size), which lands
// in [0, size) for any e, so generated programs cannot index out of range at
// any semantic level.
//
// On top of the structural guarantees, Generate validates each candidate on
// the hlr reference evaluator and retries (deterministically, continuing the
// same stream) until the program runs cleanly within a step budget and prints
// at least one value, so harness time is spent on conformance, not on
// rejecting pathological programs.
package gen
