package gen

import (
	"fmt"
	"sort"

	"uhm/internal/hlr"
)

// Weights are the statement-grammar weights an Archetype uses in place of the
// uniform generator's fixed distribution.  A zero weight removes the
// production entirely; weights need not sum to any particular total.  Print
// must stay positive: it is the one production that can always be emitted, so
// it guarantees the retry loop inside stmt terminates even when every other
// weighted production is unavailable in the current scope.
type Weights struct {
	Assign      int // scalar assignment
	ArrayAssign int // array element assignment
	Print       int // print statement
	If          int // if / if-else
	Loop        int // bounded while loop
	Call        int // call statement
	// CallExpr gates function-style calls inside expressions: zero disables
	// them entirely, any positive value keeps the uniform grammar's odds.
	CallExpr int
}

// Archetype is a named workload profile: a structural template plus the
// weighted grammar that fills it in.  Each archetype exercises a distinct
// locality pattern against the DTB and cache, extending the phase space of
// the paper's Figure 2 study beyond uniform-random programs.
type Archetype struct {
	// Name selects the archetype (uhmbench -gen-archetype).
	Name string
	// Description is a one-line summary for catalogues and usage text.
	Description string
	// Config bounds generation, as for the uniform generator.
	Config Config
	// Weights replace the uniform statement distribution.
	Weights Weights

	structure func(*generator, *procCtx)
}

// archetypes is the fixed catalogue, in presentation order.
var archetypes = []Archetype{
	{
		Name:        "recursion",
		Description: "deep call-heavy web of mutually-recursive procedures",
		Config: Config{
			MaxProcs:       8,
			MaxProcDepth:   1,
			MaxStmtDepth:   3,
			MaxExprDepth:   3,
			MaxBlockStmts:  4,
			StmtBudget:     70,
			MaxLoopBound:   4,
			MaxFuel:        5,
			MaxArraySize:   6,
			OracleMaxSteps: 2_000_000,
			MaxAttempts:    32,
		},
		Weights:   Weights{Assign: 3, ArrayAssign: 0, Print: 1, If: 2, Loop: 1, Call: 5, CallExpr: 1},
		structure: (*generator).buildRecursion,
	},
	{
		Name:        "kernel",
		Description: "flat loop-dominated numeric kernel with few procedures",
		Config: Config{
			MaxProcs:       1,
			MaxProcDepth:   1,
			MaxStmtDepth:   5,
			MaxExprDepth:   4,
			MaxBlockStmts:  5,
			StmtBudget:     80,
			MaxLoopBound:   8,
			MaxFuel:        3,
			MaxArraySize:   12,
			OracleMaxSteps: 2_000_000,
			MaxAttempts:    32,
		},
		Weights:   Weights{Assign: 3, ArrayAssign: 4, Print: 1, If: 2, Loop: 5, Call: 1, CallExpr: 0},
		structure: (*generator).buildKernel,
	},
	{
		Name:        "phased",
		Description: "working set shifts mid-run: disjoint procedure populations per phase",
		Config: Config{
			MaxProcs:       9,
			MaxProcDepth:   1,
			MaxStmtDepth:   3,
			MaxExprDepth:   3,
			MaxBlockStmts:  4,
			StmtBudget:     90,
			MaxLoopBound:   5,
			MaxFuel:        4,
			MaxArraySize:   9,
			OracleMaxSteps: 2_000_000,
			MaxAttempts:    32,
		},
		Weights:   Weights{Assign: 2, ArrayAssign: 3, Print: 1, If: 2, Loop: 1, Call: 4, CallExpr: 0},
		structure: (*generator).buildPhased,
	},
	{
		Name:        "dispatch",
		Description: "state-machine hub procedure fanning out over many small handlers",
		Config: Config{
			MaxProcs:       11,
			MaxProcDepth:   1,
			MaxStmtDepth:   3,
			MaxExprDepth:   3,
			MaxBlockStmts:  4,
			StmtBudget:     80,
			MaxLoopBound:   6,
			MaxFuel:        10,
			MaxArraySize:   9,
			OracleMaxSteps: 2_000_000,
			MaxAttempts:    32,
		},
		Weights:   Weights{Assign: 3, ArrayAssign: 2, Print: 1, If: 2, Loop: 1, Call: 0, CallExpr: 0},
		structure: (*generator).buildDispatch,
	},
}

// Archetypes returns the catalogue of workload archetypes in presentation
// order.  The slice is a copy; callers may reorder it freely.
func Archetypes() []Archetype {
	out := make([]Archetype, len(archetypes))
	copy(out, archetypes)
	return out
}

// ArchetypeNames returns the archetype names in presentation order.
func ArchetypeNames() []string {
	names := make([]string, len(archetypes))
	for i, a := range archetypes {
		names[i] = a.Name
	}
	return names
}

// ArchetypeByName resolves an archetype by name.
func ArchetypeByName(name string) (Archetype, error) {
	for _, a := range archetypes {
		if a.Name == name {
			return a, nil
		}
	}
	known := ArchetypeNames()
	sort.Strings(known)
	return Archetype{}, fmt.Errorf("gen: unknown archetype %q (known: %v)", name, known)
}

// Generate produces the archetype's program for a seed: deterministic for a
// given (archetype, seed) pair, and validated against the hlr oracle exactly
// like the uniform generator's output.  Distinct archetypes use distinct name
// prefixes so the same seed yields distinct content-addressed artifacts.
func (a Archetype) Generate(seed int64) (*Program, error) {
	if a.structure == nil {
		return nil, fmt.Errorf("gen: archetype %q has no structural template", a.Name)
	}
	if a.Weights.Print < 1 {
		return nil, fmt.Errorf("gen: archetype %q: Weights.Print must be >= 1", a.Name)
	}
	name := fmt.Sprintf("%s%d", a.Name, seed)
	w := a.Weights
	return a.Config.generate(seed, name, a.Name, func(g *generator) *hlr.Program {
		g.w = &w
		main := &procCtx{name: name, isMain: true}
		a.structure(g, main)
		return &hlr.Program{Name: name, Block: g.blockOf(main)}
	})
}

// buildRecursion emits a flat web of sibling procedures directly under main.
// Because siblings are mutually visible, the call-heavy weights produce dense
// mutual recursion; the fuel discipline still bounds total activations.  The
// instruction working set is spread across many procedure bodies revisited in
// data-dependent order — the DTB-hostile end of the locality spectrum.
func (g *generator) buildRecursion(main *procCtx) {
	for i, n := 0, 2+g.intn(2); i < n; i++ {
		main.scalars = append(main.scalars, g.freshName("g"))
	}
	main.loops = append(main.loops, g.freshName("li"))
	nprocs := 5 + g.intn(3)
	for i := 0; i < nprocs; i++ {
		p := &procCtx{name: g.freshName("p"), parent: main, depth: 1}
		p.params = append(p.params, g.freshName("fuel"))
		if g.intn(2) == 0 {
			p.params = append(p.params, g.freshName("t"))
		}
		p.scalars = append(p.scalars, p.params[1:]...)
		p.scalars = append(p.scalars, g.freshName("v"))
		main.procs = append(main.procs, p)
	}
	g.perBody = max(8, g.cfg.StmtBudget/(nprocs+1))
	g.bodies(main, &scope{proc: main})
}

// buildKernel emits a nearly-flat numeric kernel: several arrays and loop
// counters in main, loop- and array-heavy weights, and at most one helper
// procedure.  The instruction working set is a handful of tight loop bodies
// re-executed many times — the DTB-friendly end of the locality spectrum.
func (g *generator) buildKernel(main *procCtx) {
	for i, n := 0, 3+g.intn(2); i < n; i++ {
		main.scalars = append(main.scalars, g.freshName("g"))
	}
	for i, n := 0, 2+g.intn(2); i < n; i++ {
		main.loops = append(main.loops, g.freshName("li"))
	}
	for i, n := 0, 2+g.intn(2); i < n; i++ {
		main.arrays = append(main.arrays, arrayDecl{name: g.freshName("arr"), size: 4 + int64(g.intn(int(g.cfg.MaxArraySize-3)))})
	}
	if g.intn(3) == 0 {
		p := &procCtx{name: g.freshName("p"), parent: main, depth: 1}
		p.params = append(p.params, g.freshName("fuel"), g.freshName("t"))
		p.scalars = append(p.scalars, p.params[1:]...)
		p.loops = append(p.loops, g.freshName("li"))
		main.procs = append(main.procs, p)
	}
	g.perBody = max(8, g.cfg.StmtBudget/(len(main.procs)+1))
	sc := &scope{proc: main}
	for _, child := range main.procs {
		g.bodies(child, &scope{parent: sc, proc: child})
	}
	// The kernel skeleton is guaranteed, not probabilistic: at least two
	// top-level bounded loops (the weighted grammar adds nesting and filler
	// inside and between them).
	g.budget = g.perBody
	var stmts []hlr.Stmt
	nloops := 2 + g.intn(len(main.loops)-1)
	for i := 0; i < nloops; i++ {
		if s, ok := g.boundedLoop(sc, 0); ok {
			stmts = append(stmts, s)
		}
		if g.budget > 0 && g.intn(2) == 0 {
			stmts = append(stmts, g.stmt(sc, 0))
		}
	}
	main.body = &hlr.CompoundStmt{Stmts: g.epilogue(main, stmts)}
}

// buildPhased emits a program whose main body is a sequence of phases.  Each
// phase owns a disjoint set of procedures and its own array; phase bodies are
// generated under a visibility view restricted to that phase, so successive
// phases touch disjoint instruction and data working sets.  A translation
// buffer warmed by one phase is cold for the next — the churn pattern the
// sweep is designed to expose.
func (g *generator) buildPhased(main *procCtx) {
	for i, n := 0, 2+g.intn(2); i < n; i++ {
		main.scalars = append(main.scalars, g.freshName("g"))
	}
	nphases := 2 + g.intn(2)
	type phase struct {
		procs []*procCtx
		arr   arrayDecl
		loop  string
	}
	phases := make([]phase, nphases)
	for ph := range phases {
		lv := g.freshName("li")
		main.loops = append(main.loops, lv)
		arr := arrayDecl{name: g.freshName("arr"), size: 4 + int64(g.intn(int(g.cfg.MaxArraySize-3)))}
		main.arrays = append(main.arrays, arr)
		np := 2 + g.intn(2)
		procs := make([]*procCtx, np)
		for i := range procs {
			p := &procCtx{name: g.freshName("p"), parent: main, depth: 1}
			p.params = append(p.params, g.freshName("fuel"))
			if g.intn(2) == 0 {
				p.params = append(p.params, g.freshName("t"))
			}
			p.scalars = append(p.scalars, p.params[1:]...)
			p.scalars = append(p.scalars, g.freshName("v"))
			main.procs = append(main.procs, p)
			procs[i] = p
		}
		phases[ph] = phase{procs: procs, arr: arr, loop: lv}
	}

	perPhase := max(8, g.cfg.StmtBudget/(nphases*2))
	// view builds the phase-restricted visibility root: main's shared scalars,
	// but only this phase's loop counter, array and procedures.
	view := func(p phase) *procCtx {
		return &procCtx{
			name:    main.name,
			isMain:  true,
			scalars: main.scalars,
			loops:   []string{p.loop},
			arrays:  []arrayDecl{p.arr},
			procs:   p.procs,
		}
	}
	// Phase procedure bodies: generated under the restricted view, so calls
	// stay within the phase (mutual recursion included) and array traffic
	// stays on the phase's array.
	for _, p := range phases {
		v := view(p)
		for _, proc := range p.procs {
			g.budget = max(6, perPhase/len(p.procs))
			sc := &scope{parent: &scope{proc: v}, proc: proc}
			stmts := []hlr.Stmt{g.guardStmt(proc)}
			stmts = append(stmts, g.stmtList(sc, 0)...)
			if g.intn(2) == 0 {
				stmts = append(stmts, &hlr.ReturnStmt{Value: g.expr(sc, 0)})
			}
			proc.body = &hlr.CompoundStmt{Stmts: stmts}
		}
	}
	// Main body: one bounded loop per phase, in order, each generated under
	// its phase's view — the working-set shift is the phase boundary.
	var stmts []hlr.Stmt
	for _, p := range phases {
		sc := &scope{proc: view(p)}
		g.budget = perPhase
		if s, ok := g.boundedLoop(sc, 0); ok {
			stmts = append(stmts, s)
		}
		if call, ok := g.callTo(sc, 0); ok {
			stmts = append(stmts, &hlr.CallStmt{Name: call.Name, Args: call.Args})
		}
	}
	main.body = &hlr.CompoundStmt{Stmts: g.epilogue(main, stmts)}
}

// buildDispatch emits state-machine style code: one hub procedure whose body
// is an explicit if-chain on (state mod n) selecting among n small handler
// procedures, then a self-recursive call advancing the state.  Control keeps
// returning to the hot hub while fanning out over many cool handlers — the
// locality pattern of interpreters and protocol state machines.
func (g *generator) buildDispatch(main *procCtx) {
	for i, n := 0, 2+g.intn(2); i < n; i++ {
		main.scalars = append(main.scalars, g.freshName("g"))
	}
	main.loops = append(main.loops, g.freshName("li"))
	if g.intn(2) == 0 {
		main.arrays = append(main.arrays, arrayDecl{name: g.freshName("arr"), size: 4 + int64(g.intn(int(g.cfg.MaxArraySize-3)))})
	}
	nhandlers := 6 + g.intn(4)
	handlers := make([]*procCtx, nhandlers)
	for i := range handlers {
		h := &procCtx{name: g.freshName("h"), parent: main, depth: 1}
		h.params = append(h.params, g.freshName("fuel"), g.freshName("t"))
		h.scalars = append(h.scalars, h.params[1:]...)
		main.procs = append(main.procs, h)
		handlers[i] = h
	}
	hub := &procCtx{name: g.freshName("hub"), parent: main, depth: 1}
	hub.params = append(hub.params, g.freshName("fuel"), g.freshName("st"))
	main.procs = append(main.procs, hub)

	// Handler bodies: a guard plus a couple of weighted statements over the
	// shared globals; handlers never call (Call weight is zero), so each is a
	// small straight-line leaf.
	mainSc := &scope{proc: main}
	for _, h := range handlers {
		g.budget = 2 + g.intn(3)
		sc := &scope{parent: mainSc, proc: h}
		stmts := []hlr.Stmt{g.guardStmt(h)}
		stmts = append(stmts, g.stmtList(sc, 0)...)
		if g.intn(2) == 0 {
			stmts = append(stmts, &hlr.ReturnStmt{Value: g.expr(sc, 0)})
		}
		h.body = &hlr.CompoundStmt{Stmts: stmts}
	}

	// Hub body: guard, explicit dispatch chain on (st mod n), self-recursion
	// with the state advanced by a fixed stride.  st starts >= 0 and only
	// grows, so the truncated mod stays in [0, n).
	st := hub.params[1]
	hubSc := &scope{parent: mainSc, proc: hub}
	fuelDec := func() hlr.Expr { return bin(hlr.OpSub, ref(hub.params[0]), lit(1)) }
	var dispatch hlr.Stmt
	for i := nhandlers - 1; i >= 0; i-- {
		call := &hlr.CallStmt{
			Name: handlers[i].name,
			Args: []hlr.Expr{fuelDec(), g.expr(hubSc, 1)},
		}
		cond := bin(hlr.OpEq, bin(hlr.OpMod, ref(st), lit(int64(nhandlers))), lit(int64(i)))
		s := &hlr.IfStmt{Cond: cond, Then: call}
		if dispatch != nil {
			s.Else = dispatch
		}
		dispatch = s
	}
	stride := int64(1 + g.intn(nhandlers))
	hub.body = &hlr.CompoundStmt{Stmts: []hlr.Stmt{
		g.guardStmt(hub),
		dispatch,
		&hlr.CallStmt{
			Name: hub.name,
			Args: []hlr.Expr{fuelDec(), bin(hlr.OpAdd, ref(st), lit(stride))},
		},
	}}

	// Main body: a bounded loop pumping the hub with fresh fuel and a varying
	// start state, plus a few weighted statements, then the epilogue.
	g.budget = max(8, g.cfg.StmtBudget/4)
	lv := main.loops[0]
	bound := 2 + int64(g.intn(int(g.cfg.MaxLoopBound)))
	pump := &hlr.CompoundStmt{Stmts: []hlr.Stmt{
		&hlr.AssignStmt{Target: lv, Value: lit(0)},
		&hlr.WhileStmt{
			Cond: bin(hlr.OpLt, ref(lv), lit(bound)),
			Body: &hlr.CompoundStmt{Stmts: []hlr.Stmt{
				&hlr.CallStmt{
					Name: hub.name,
					Args: []hlr.Expr{
						lit(1 + int64(g.intn(int(g.cfg.MaxFuel)))),
						bin(hlr.OpMul, ref(lv), lit(1+int64(g.intn(3)))),
					},
				},
				&hlr.AssignStmt{Target: lv, Value: bin(hlr.OpAdd, ref(lv), lit(1))},
			}},
		},
	}}
	stmts := []hlr.Stmt{pump}
	stmts = append(stmts, g.stmtList(mainSc, 0)...)
	main.body = &hlr.CompoundStmt{Stmts: g.epilogue(main, stmts)}
}
