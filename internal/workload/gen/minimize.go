package gen

import (
	"errors"
	"fmt"

	"uhm/internal/hlr"
)

// FailFunc reports whether a candidate source program still exhibits the
// failure being minimized.  Implementations must return false for programs
// that are invalid or error out (a candidate that no longer runs cleanly is
// useless as a reproducer), so structural edits here never need to preserve
// semantics — only the failure.
type FailFunc func(src string) bool

// Minimize shrinks a failing MiniLang program while fails keeps returning
// true, and returns the smallest failing source found.  It applies rounds of
// AST-level reductions — statement deletion, branch flattening, loop
// unwrapping, expression simplification, and declaration removal — re-render-
// ing and re-checking after every candidate edit, until a round makes no
// progress or the round limit is hit.
func Minimize(src string, fails FailFunc) (string, error) {
	if !fails(src) {
		return src, errors.New("gen: Minimize called on a source that does not fail")
	}
	prog, err := hlr.Parse(src)
	if err != nil {
		return src, fmt.Errorf("gen: Minimize: %w", err)
	}
	// Work on the canonical rendering; if formatting alone loses the failure
	// (it should not), keep the original.
	best := hlr.Format(prog)
	if !fails(best) {
		return src, nil
	}

	m := &minimizer{fails: fails, prog: prog, best: best}
	const maxRounds = 30
	for round := 0; round < maxRounds; round++ {
		before := len(m.best)
		m.round()
		if len(m.best) >= before {
			break
		}
	}
	return m.best, nil
}

type minimizer struct {
	fails FailFunc
	prog  *hlr.Program
	best  string
}

// try re-renders the mutated AST and keeps the edit if it still fails and is
// not larger than the best so far.
func (m *minimizer) try() bool {
	src := hlr.Format(m.prog)
	if len(src) <= len(m.best) && m.fails(src) {
		m.best = src
		return true
	}
	return false
}

func (m *minimizer) round() {
	m.reduceBlock(m.prog.Block)
	m.reduceDecls(m.prog.Block)
}

// reduceDecls drops procedure and variable declarations (bottom-up, so inner
// procedures go before the outer ones that contain them).  Removals that
// leave dangling references simply fail to re-analyse inside the FailFunc and
// are reverted.
func (m *minimizer) reduceDecls(blk *hlr.Block) {
	for _, pd := range blk.Procs {
		m.reduceDecls(pd.Body)
	}
	for i := 0; i < len(blk.Procs); {
		saved := blk.Procs
		blk.Procs = append(append([]*hlr.ProcDecl(nil), blk.Procs[:i]...), blk.Procs[i+1:]...)
		if m.try() {
			continue
		}
		blk.Procs = saved
		i++
	}
	for i := 0; i < len(blk.Vars); {
		saved := blk.Vars
		blk.Vars = append(append([]*hlr.VarDecl(nil), blk.Vars[:i]...), blk.Vars[i+1:]...)
		if m.try() {
			continue
		}
		blk.Vars = saved
		i++
	}
}

func (m *minimizer) reduceBlock(blk *hlr.Block) {
	for _, pd := range blk.Procs {
		m.reduceBlock(pd.Body)
	}
	m.reduceCompound(blk.Body)
}

// reduceCompound deletes and simplifies statements in one begin/end list.
func (m *minimizer) reduceCompound(c *hlr.CompoundStmt) {
	// Deletion pass.
	for i := 0; i < len(c.Stmts); {
		saved := c.Stmts
		c.Stmts = append(append([]hlr.Stmt(nil), c.Stmts[:i]...), c.Stmts[i+1:]...)
		if m.try() {
			continue
		}
		c.Stmts = saved
		i++
	}
	// Structural simplification pass.
	for i := range c.Stmts {
		m.reduceStmtAt(&c.Stmts[i])
	}
	// Expression pass.
	for i := range c.Stmts {
		m.reduceStmtExprs(c.Stmts[i])
	}
}

// reduceStmtAt tries structure-level replacements of the statement in place.
func (m *minimizer) reduceStmtAt(slot *hlr.Stmt) {
	switch s := (*slot).(type) {
	case *hlr.IfStmt:
		// Replace the if by one of its branches.
		for _, repl := range []hlr.Stmt{s.Then, s.Else} {
			if repl == nil {
				continue
			}
			saved := *slot
			*slot = repl
			if m.try() {
				m.reduceStmtAt(slot)
				return
			}
			*slot = saved
		}
		// Drop just the else branch.
		if s.Else != nil {
			saved := s.Else
			s.Else = nil
			if !m.try() {
				s.Else = saved
			}
		}
		m.reduceNested(s.Then)
		m.reduceNested(s.Else)
	case *hlr.WhileStmt:
		// Replace the loop by its body (runs once instead of n times).
		saved := *slot
		*slot = s.Body
		if m.try() {
			m.reduceStmtAt(slot)
			return
		}
		*slot = saved
		m.reduceNested(s.Body)
	case *hlr.CompoundStmt:
		m.reduceCompound(s)
	}
}

func (m *minimizer) reduceNested(s hlr.Stmt) {
	if c, ok := s.(*hlr.CompoundStmt); ok && c != nil {
		m.reduceCompound(c)
	}
}

// reduceStmtExprs simplifies the expressions reachable from one statement.
func (m *minimizer) reduceStmtExprs(s hlr.Stmt) {
	switch x := s.(type) {
	case *hlr.AssignStmt:
		if x.Index != nil {
			m.reduceExprAt(&x.Index)
		}
		m.reduceExprAt(&x.Value)
	case *hlr.IfStmt:
		m.reduceExprAt(&x.Cond)
	case *hlr.WhileStmt:
		m.reduceExprAt(&x.Cond)
	case *hlr.CallStmt:
		for i := range x.Args {
			m.reduceExprAt(&x.Args[i])
		}
	case *hlr.PrintStmt:
		m.reduceExprAt(&x.Value)
	case *hlr.ReturnStmt:
		if x.Value != nil {
			m.reduceExprAt(&x.Value)
		}
	case *hlr.CompoundStmt:
		for _, inner := range x.Stmts {
			m.reduceStmtExprs(inner)
		}
	}
}

// reduceExprAt tries to replace the expression with a literal or with one of
// its own subexpressions, then recurses into whatever survived.
func (m *minimizer) reduceExprAt(slot *hlr.Expr) {
	if *slot == nil {
		return
	}
	if _, isLit := (*slot).(*hlr.NumberLit); isLit {
		return
	}
	candidates := []hlr.Expr{
		&hlr.NumberLit{Value: 0},
		&hlr.NumberLit{Value: 1},
	}
	switch e := (*slot).(type) {
	case *hlr.BinaryExpr:
		candidates = append(candidates, e.Left, e.Right)
	case *hlr.UnaryExpr:
		candidates = append(candidates, e.Operand)
	case *hlr.VarRef:
		if e.Index != nil {
			candidates = append(candidates, e.Index)
		}
	case *hlr.CallExpr:
		candidates = append(candidates, e.Args...)
	}
	for _, cand := range candidates {
		saved := *slot
		*slot = cand
		if m.try() {
			m.reduceExprAt(slot)
			return
		}
		*slot = saved
	}
	// No replacement held: recurse into children.
	switch e := (*slot).(type) {
	case *hlr.BinaryExpr:
		m.reduceExprAt(&e.Left)
		m.reduceExprAt(&e.Right)
	case *hlr.UnaryExpr:
		m.reduceExprAt(&e.Operand)
	case *hlr.VarRef:
		if e.Index != nil {
			m.reduceExprAt(&e.Index)
		}
	case *hlr.CallExpr:
		for i := range e.Args {
			m.reduceExprAt(&e.Args[i])
		}
	}
}
