package gen

import (
	"strings"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/hlr"
)

// TestArchetypeCatalogue checks the catalogue contract: at least the four
// profiles the experiments depend on, unique resolvable names, and an error
// for unknown names.
func TestArchetypeCatalogue(t *testing.T) {
	names := ArchetypeNames()
	if len(names) < 4 {
		t.Fatalf("expected >= 4 archetypes, got %v", names)
	}
	for _, want := range []string{"recursion", "kernel", "phased", "dispatch"} {
		if !contains(names, want) {
			t.Errorf("catalogue missing %q: %v", want, names)
		}
	}
	seen := map[string]bool{}
	for _, a := range Archetypes() {
		if seen[a.Name] {
			t.Errorf("duplicate archetype name %q", a.Name)
		}
		seen[a.Name] = true
		got, err := ArchetypeByName(a.Name)
		if err != nil {
			t.Errorf("ArchetypeByName(%q): %v", a.Name, err)
		}
		if got.Name != a.Name || got.Description == "" {
			t.Errorf("ArchetypeByName(%q) = %+v", a.Name, got)
		}
	}
	if _, err := ArchetypeByName("no-such-profile"); err == nil {
		t.Error("ArchetypeByName accepted an unknown name")
	}
}

// TestArchetypeDeterministic checks a (archetype, seed) pair fully determines
// the program, and that distinct archetypes never collide on a name.
func TestArchetypeDeterministic(t *testing.T) {
	names := map[string]string{}
	for _, a := range Archetypes() {
		for seed := int64(1); seed <= 5; seed++ {
			p1, err := a.Generate(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name, seed, err)
			}
			p2, err := a.Generate(seed)
			if err != nil {
				t.Fatalf("%s seed %d (second): %v", a.Name, seed, err)
			}
			if p1.Source != p2.Source {
				t.Fatalf("%s seed %d: two generations differ", a.Name, seed)
			}
			if p1.Archetype != a.Name {
				t.Errorf("%s seed %d: Archetype field = %q", a.Name, seed, p1.Archetype)
			}
			if prev, dup := names[p1.Name]; dup {
				t.Errorf("program name %q produced by both %s and %s", p1.Name, prev, a.Name)
			}
			names[p1.Name] = a.Name
		}
	}
}

// TestArchetypeProgramsValid checks every archetype program parses, compiles
// at every level, stays within the oracle budget and prints output — the same
// validity contract as the uniform generator.
func TestArchetypeProgramsValid(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	for _, a := range Archetypes() {
		for seed := int64(1); seed <= seeds; seed++ {
			p, err := a.Generate(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name, seed, err)
			}
			if len(p.Output) == 0 {
				t.Errorf("%s seed %d: empty output", a.Name, seed)
			}
			if p.OracleSteps > a.Config.OracleMaxSteps {
				t.Errorf("%s seed %d: %d oracle steps exceed budget %d", a.Name, seed, p.OracleSteps, a.Config.OracleMaxSteps)
			}
			prog, err := hlr.Parse(p.Source)
			if err != nil {
				t.Fatalf("%s seed %d: reparse: %v", a.Name, seed, err)
			}
			for _, level := range compile.Levels() {
				if _, err := compile.Compile(prog, level); err != nil {
					t.Errorf("%s seed %d: compile at %v: %v", a.Name, seed, level, err)
				}
			}
		}
	}
}

// countProcs counts procedure declarations anywhere in the program.
func countProcs(b *hlr.Block) int {
	n := len(b.Procs)
	for _, p := range b.Procs {
		n += countProcs(p.Body)
	}
	return n
}

// TestArchetypeShapes checks each profile actually has the structure its name
// promises, for every seed — not just on average.
func TestArchetypeShapes(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		for _, a := range Archetypes() {
			p, err := a.Generate(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name, seed, err)
			}
			prog, err := hlr.Parse(p.Source)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name, seed, err)
			}
			procs := countProcs(prog.Block)
			calls := strings.Count(p.Source, "call ")
			whiles := strings.Count(p.Source, "while ")
			switch a.Name {
			case "recursion":
				if procs < 5 {
					t.Errorf("recursion seed %d: only %d procedures", seed, procs)
				}
				if calls < 3 {
					t.Errorf("recursion seed %d: only %d call statements", seed, calls)
				}
			case "kernel":
				if procs > 1 {
					t.Errorf("kernel seed %d: %d procedures, want <= 1", seed, procs)
				}
				if whiles < 2 {
					t.Errorf("kernel seed %d: only %d loops", seed, whiles)
				}
				if !strings.Contains(p.Source, "[") {
					t.Errorf("kernel seed %d: no array traffic", seed)
				}
			case "phased":
				if procs < 4 {
					t.Errorf("phased seed %d: only %d procedures", seed, procs)
				}
				// One top-level loop per phase: at least two phases.
				if whiles < 2 {
					t.Errorf("phased seed %d: only %d loops", seed, whiles)
				}
				if len(prog.Block.Vars) == 0 {
					t.Errorf("phased seed %d: no declarations", seed)
				}
			case "dispatch":
				if procs < 7 {
					t.Errorf("dispatch seed %d: only %d procedures (hub + handlers)", seed, procs)
				}
				// The hub's dispatch chain tests (st mod n = i).
				if !strings.Contains(p.Source, " mod ") {
					t.Errorf("dispatch seed %d: no state dispatch", seed)
				}
				// Hub self-recursion plus the main pump: the hub is called
				// from at least two sites.
				if calls < 3 {
					t.Errorf("dispatch seed %d: only %d call statements", seed, calls)
				}
			}
		}
	}
}

// TestArchetypePhasedDisjointPhases checks the phased profile's defining
// property: procedures of one phase never call procedures of another, so the
// instruction working set really does shift at phase boundaries.
func TestArchetypePhasedDisjointPhases(t *testing.T) {
	a, err := ArchetypeByName("phased")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 25; seed++ {
		p, err := a.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := hlr.Parse(p.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Recover each procedure's phase from the declaration order: the
		// generator declares each phase's procedures consecutively and arrays
		// one per phase, so the phase of proc i is found by matching call
		// graphs against declaration groups.  The weaker but structural check:
		// every call inside a procedure targets a procedure, and the callee
		// set of each procedure stays within one phase.  Phases are separated
		// by the array declarations interleaved between their proc groups, so
		// here we verify via the call graph: build proc -> callees and assert
		// the graph decomposes into components that never span a declared
		// "arr" boundary group.
		type procInfo struct {
			name    string
			callees map[string]bool
		}
		var procs []procInfo
		for _, pd := range prog.Block.Procs {
			info := procInfo{name: pd.Name, callees: map[string]bool{}}
			var walkStmt func(hlr.Stmt)
			walkExpr := func(hlr.Expr) {}
			walkStmt = func(s hlr.Stmt) {
				switch x := s.(type) {
				case *hlr.CompoundStmt:
					for _, inner := range x.Stmts {
						walkStmt(inner)
					}
				case *hlr.CallStmt:
					info.callees[x.Name] = true
				case *hlr.IfStmt:
					walkStmt(x.Then)
					if x.Else != nil {
						walkStmt(x.Else)
					}
				case *hlr.WhileStmt:
					walkStmt(x.Body)
				}
			}
			_ = walkExpr
			walkStmt(pd.Body.Body)
			procs = append(procs, info)
		}
		// Phase groups are consecutive runs of procedure declarations; the
		// generator emits 2-3 procs per phase.  Use union-find over call
		// edges and assert every component is a consecutive declaration run
		// of length <= 3 (one phase's population).
		index := map[string]int{}
		for i, pi := range procs {
			index[pi.name] = i
		}
		parent := make([]int, len(procs))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		union := func(a, b int) { parent[find(a)] = find(b) }
		for i, pi := range procs {
			for callee := range pi.callees {
				if j, ok := index[callee]; ok {
					union(i, j)
				}
			}
		}
		comp := map[int][]int{}
		for i := range procs {
			r := find(i)
			comp[r] = append(comp[r], i)
		}
		for _, members := range comp {
			lo, hi := members[0], members[0]
			for _, m := range members {
				if m < lo {
					lo = m
				}
				if m > hi {
					hi = m
				}
			}
			if hi-lo+1 > 3 {
				t.Errorf("seed %d: call-graph component spans declarations %d..%d — phases are not disjoint", seed, lo, hi)
			}
		}
	}
}

// TestArchetypeLoopCounterDiscipline extends the termination-discipline check
// to every archetype: loop counters are assigned only in init/step shapes.
func TestArchetypeLoopCounterDiscipline(t *testing.T) {
	for _, a := range Archetypes() {
		for seed := int64(1); seed <= 20; seed++ {
			p, err := a.Generate(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name, seed, err)
			}
			prog, err := hlr.Parse(p.Source)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name, seed, err)
			}
			var walkStmt func(s hlr.Stmt)
			walkStmt = func(s hlr.Stmt) {
				switch x := s.(type) {
				case *hlr.CompoundStmt:
					for _, inner := range x.Stmts {
						walkStmt(inner)
					}
				case *hlr.AssignStmt:
					if !strings.HasPrefix(x.Target, "li") {
						return
					}
					switch v := x.Value.(type) {
					case *hlr.NumberLit:
					case *hlr.BinaryExpr:
						l, lok := v.Left.(*hlr.VarRef)
						_, rok := v.Right.(*hlr.NumberLit)
						if v.Op != hlr.OpAdd || !lok || l.Name != x.Target || !rok {
							t.Errorf("%s seed %d: loop counter %s assigned outside the loop discipline: %s",
								a.Name, seed, x.Target, hlr.FormatStmt(s))
						}
					default:
						t.Errorf("%s seed %d: loop counter %s assigned %T", a.Name, seed, x.Target, v)
					}
				case *hlr.IfStmt:
					walkStmt(x.Then)
					if x.Else != nil {
						walkStmt(x.Else)
					}
				case *hlr.WhileStmt:
					walkStmt(x.Body)
				}
			}
			var walkBlock func(b *hlr.Block)
			walkBlock = func(b *hlr.Block) {
				for _, pd := range b.Procs {
					walkBlock(pd.Body)
				}
				walkStmt(b.Body)
			}
			walkBlock(prog.Block)
		}
	}
}

// TestDefaultGeneratorUnchangedByWeights pins that installing no weights
// leaves the uniform generator's draw stream intact: the weighted-grammar
// refactor must not perturb a single pinned seed.
func TestDefaultGeneratorUnchangedByWeights(t *testing.T) {
	// Golden fingerprints would over-pin; the real guard is the genregress
	// pinned-seed tests plus this structural check that Generate leaves the
	// weights hook nil (the archetype path is the only writer).
	p, err := Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DefaultConfig().Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != q.Source {
		t.Fatal("Generate and DefaultConfig().Generate disagree")
	}
	if p.Archetype != "" {
		t.Fatalf("uniform generator stamped archetype %q", p.Archetype)
	}
}
