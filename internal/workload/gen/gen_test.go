package gen

import (
	"strings"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/hlr"
)

// TestGenerateDeterministic checks that a seed fully determines the program.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d (second): %v", seed, err)
		}
		if a.Source != b.Source {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGenerateDistinctSeeds checks seeds actually vary the program.
func TestGenerateDistinctSeeds(t *testing.T) {
	seen := map[string]int64{}
	for seed := int64(1); seed <= 20; seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if prev, dup := seen[p.Source]; dup {
			t.Errorf("seeds %d and %d generated identical programs", prev, seed)
		}
		seen[p.Source] = seed
	}
}

// TestGeneratedProgramsValid checks every generated program parses, analyses,
// compiles at every level, runs cleanly on the oracle within the validation
// budget, and prints something.
func TestGeneratedProgramsValid(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 60; seed++ {
		p, err := cfg.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(p.Output) == 0 {
			t.Errorf("seed %d: empty output", seed)
		}
		if p.OracleSteps > cfg.OracleMaxSteps {
			t.Errorf("seed %d: %d oracle steps exceed budget %d", seed, p.OracleSteps, cfg.OracleMaxSteps)
		}
		prog, err := hlr.Parse(p.Source)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		for _, level := range compile.Levels() {
			if _, err := compile.Compile(prog, level); err != nil {
				t.Errorf("seed %d: compile at %v: %v", seed, level, err)
			}
		}
	}
}

// TestCorpusFeatureCoverage checks the generated corpus as a whole exercises
// every language feature the conformance harness is meant to stress.
func TestCorpusFeatureCoverage(t *testing.T) {
	features := map[string]bool{
		"while":     false,
		"if":        false,
		"else":      false,
		"proc":      false,
		"call":      false,
		" mod ":     false, // mod with spaces: a modulo operator, not a name
		" / ":       false,
		"[":         false, // array access or declaration
		"not ":      false,
		"-":         false,
		"return":    false,
		"fuel":      false, // recursion with fuel discipline
		" and ":     false,
		" or ":      false,
		"print":     false,
		"proc p":    false,
		"  proc":    false, // nested procedure (indented by the formatter)
		"mod (2 * ": false, // wrapped odd divisor (negative-operand div/mod)
	}
	for seed := int64(1); seed <= 120; seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for feat, seen := range features {
			if !seen && strings.Contains(p.Source, feat) {
				features[feat] = true
			}
		}
	}
	for feat, seen := range features {
		if !seen {
			t.Errorf("no program among 120 seeds contains %q", feat)
		}
	}
}

// TestLoopCountersNeverAssigned checks the termination discipline the
// generator promises: loop-counter variables (the "li" name class) are
// assigned only by their own loop's init and step statements, i.e. always in
// the shape "li := literal" or "li := li + literal".
func TestLoopCountersNeverAssigned(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := hlr.Parse(p.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var walkStmt func(s hlr.Stmt)
		walkStmt = func(s hlr.Stmt) {
			switch x := s.(type) {
			case *hlr.CompoundStmt:
				for _, inner := range x.Stmts {
					walkStmt(inner)
				}
			case *hlr.AssignStmt:
				if !strings.HasPrefix(x.Target, "li") {
					return
				}
				switch v := x.Value.(type) {
				case *hlr.NumberLit:
					// init form
				case *hlr.BinaryExpr:
					l, lok := v.Left.(*hlr.VarRef)
					_, rok := v.Right.(*hlr.NumberLit)
					if v.Op != hlr.OpAdd || !lok || l.Name != x.Target || !rok {
						t.Errorf("seed %d: loop counter %s assigned outside the loop discipline: %s",
							seed, x.Target, hlr.FormatStmt(s))
					}
				default:
					t.Errorf("seed %d: loop counter %s assigned %T", seed, x.Target, v)
				}
			case *hlr.IfStmt:
				walkStmt(x.Then)
				if x.Else != nil {
					walkStmt(x.Else)
				}
			case *hlr.WhileStmt:
				walkStmt(x.Body)
			}
		}
		var walkBlock func(b *hlr.Block)
		walkBlock = func(b *hlr.Block) {
			for _, pd := range b.Procs {
				walkBlock(pd.Body)
			}
			walkStmt(b.Body)
		}
		walkBlock(prog.Block)
	}
}
