package workload

import (
	"fmt"

	"uhm/internal/workload/gen"
)

// ArchetypeInfo describes one generator archetype for catalogue consumers
// (CLI listings, experiment axes) without exposing the generator internals.
type ArchetypeInfo struct {
	// Name selects the archetype (gen.ArchetypeByName, uhmbench -gen-archetype).
	Name string
	// Description is a one-line summary of the locality profile.
	Description string
}

// Archetypes returns the generator archetype catalogue in presentation order.
// These are the controlled locality profiles the archetype x DTB-capacity
// sweep and the analytic-model validation experiment iterate over.
func Archetypes() []ArchetypeInfo {
	src := gen.Archetypes()
	out := make([]ArchetypeInfo, len(src))
	for i, a := range src {
		out[i] = ArchetypeInfo{Name: a.Name, Description: a.Description}
	}
	return out
}

// ArchetypeNames returns the archetype names in presentation order.
func ArchetypeNames() []string {
	return gen.ArchetypeNames()
}

// GenerateArchetype produces the named archetype's program for a seed,
// validated against the HLR oracle like every generated workload.
func GenerateArchetype(name string, seed int64) (*gen.Program, error) {
	a, err := gen.ArchetypeByName(name)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return a.Generate(seed)
}
