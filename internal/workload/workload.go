package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/hlr"
)

// sources maps workload names to MiniLang source text.
var sources = map[string]string{
	// loopsum: a single tight loop; the best case for a DTB ("If the hit
	// ratio in the DTB were unity, as it will be while the DIR program is in
	// a tight loop").
	"loopsum": `
program loopsum;
var i, sum, n;
begin
  n := 200;
  i := 1;
  sum := 0;
  while i <= n do
  begin
    sum := sum + i * i - (i - 1);
    i := i + 1
  end;
  print sum
end.`,

	// fib: recursive calls; exercises the call/return machinery and the
	// return-address stack of IU2.
	"fib": `
program fib;
var n;
proc fibo(k);
begin
  if k < 2 then return k
  else return fibo(k - 1) + fibo(k - 2)
end;
begin
  n := 14;
  print fibo(n)
end.`,

	// sieve: nested loops over an array; the classic benchmark of the era.
	"sieve": `
program sieve;
var flags[128], i, j, count;
begin
  i := 0;
  while i < 128 do
  begin
    flags[i] := 1;
    i := i + 1
  end;
  i := 2;
  count := 0;
  while i < 128 do
  begin
    if flags[i] = 1 then
    begin
      count := count + 1;
      j := i + i;
      while j < 128 do
      begin
        flags[j] := 0;
        j := j + i
      end
    end;
    i := i + 1
  end;
  print count
end.`,

	// matmul: triple-nested loops with indexed addressing on flattened
	// matrices.
	"matmul": `
program matmul;
var a[36], b[36], c[36], i, j, k, n, acc;
begin
  n := 6;
  i := 0;
  while i < n * n do
  begin
    a[i] := i + 1;
    b[i] := 2 * i - 3;
    c[i] := 0;
    i := i + 1
  end;
  i := 0;
  while i < n do
  begin
    j := 0;
    while j < n do
    begin
      acc := 0;
      k := 0;
      while k < n do
      begin
        acc := acc + a[i * n + k] * b[k * n + j];
        k := k + 1
      end;
      c[i * n + j] := acc;
      j := j + 1
    end;
    i := i + 1
  end;
  print c[0];
  print c[n * n - 1];
  acc := 0;
  i := 0;
  while i < n * n do
  begin
    acc := acc + c[i];
    i := i + 1
  end;
  print acc
end.`,

	// sort: bubble sort over a pseudo-random array; data-dependent branches.
	"sort": `
program sort;
var a[64], i, j, t, n, seed;
begin
  n := 64;
  seed := 7;
  i := 0;
  while i < n do
  begin
    seed := (seed * 137 + 19) mod 1009;
    a[i] := seed;
    i := i + 1
  end;
  i := 0;
  while i < n - 1 do
  begin
    j := 0;
    while j < n - 1 - i do
    begin
      if a[j] > a[j + 1] then
      begin
        t := a[j];
        a[j] := a[j + 1];
        a[j + 1] := t
      end;
      j := j + 1
    end;
    i := i + 1
  end;
  print a[0];
  print a[n / 2];
  print a[n - 1]
end.`,

	// callheavy: many small procedure activations with up-level addressing;
	// the working set is spread across several procedures.
	"callheavy": `
program callheavy;
var total, rounds;
proc work(n);
  var local;
  proc leaf(k);
  begin
    return k * 3 - 1
  end;
begin
  local := leaf(n) + leaf(n + 1);
  total := total + local
end;
proc gcd(x, y);
begin
  if y = 0 then return x;
  return gcd(y, x mod y)
end;
begin
  total := 0;
  rounds := 0;
  while rounds < 40 do
  begin
    call work(rounds);
    total := total + gcd(rounds * 12, 18 + rounds);
    rounds := rounds + 1
  end;
  print total
end.`,

	// ackermann: a small Ackermann evaluation — extremely call-intensive.
	"ackermann": `
program ackermann;
proc ack(m, n);
begin
  if m = 0 then return n + 1;
  if n = 0 then return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1))
end;
begin
  print ack(2, 3);
  print ack(3, 3)
end.`,
}

// Names returns the workload names in sorted order.
func Names() []string {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Source returns the MiniLang source of a workload.
func Source(name string) (string, error) {
	src, ok := sources[name]
	if !ok {
		return "", fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return src, nil
}

// Parse parses a workload into a fresh HLR program.
func Parse(name string) (*hlr.Program, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	return hlr.Parse(src)
}

// CompileAt parses and compiles a workload at the given semantic level.
func CompileAt(name string, level compile.Level) (*dir.Program, error) {
	prog, err := Parse(name)
	if err != nil {
		return nil, err
	}
	return compile.Compile(prog, level)
}

// MustCompileAt is CompileAt for known-good built-in workloads.
func MustCompileAt(name string, level compile.Level) *dir.Program {
	p, err := CompileAt(name, level)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return p
}

// ReferenceOutput evaluates the workload with the HLR oracle, returning the
// expected program output.
func ReferenceOutput(name string) ([]int64, error) {
	prog, err := Parse(name)
	if err != nil {
		return nil, err
	}
	res, err := hlr.Evaluate(prog, hlr.EvalOptions{})
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

// TraceConfig controls the synthetic DIR-address reference generator.
type TraceConfig struct {
	// Length is the number of references to generate.
	Length int
	// AddressSpace is the number of distinct DIR instruction addresses.
	AddressSpace int
	// WorkingSet is the number of addresses the stream concentrates on at
	// any one time (the locality the paper's principle-of-locality argument
	// relies on).
	WorkingSet int
	// PhaseLength is how many references are drawn from one working set
	// before it drifts to a new region.
	PhaseLength int
	// JumpProb is the probability of an out-of-working-set reference.
	JumpProb float64
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultTraceConfig returns a stream with pronounced locality.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Length:       50_000,
		AddressSpace: 4096,
		WorkingSet:   96,
		PhaseLength:  2_000,
		JumpProb:     0.02,
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c TraceConfig) Validate() error {
	if c.Length <= 0 || c.AddressSpace <= 0 || c.WorkingSet <= 0 || c.PhaseLength <= 0 {
		return fmt.Errorf("workload: trace parameters must be positive: %+v", c)
	}
	if c.WorkingSet > c.AddressSpace {
		return fmt.Errorf("workload: working set %d exceeds address space %d", c.WorkingSet, c.AddressSpace)
	}
	if c.JumpProb < 0 || c.JumpProb > 1 {
		return fmt.Errorf("workload: jump probability %v outside [0,1]", c.JumpProb)
	}
	return nil
}

// SyntheticTrace generates a DIR-address reference stream exhibiting the
// phase/working-set behaviour the locality literature describes.
func SyntheticTrace(c TraceConfig) ([]uint64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	trace := make([]uint64, c.Length)
	base := rng.Intn(c.AddressSpace)
	for i := 0; i < c.Length; i++ {
		if i%c.PhaseLength == 0 && i > 0 {
			base = rng.Intn(c.AddressSpace)
		}
		var addr int
		if rng.Float64() < c.JumpProb {
			addr = rng.Intn(c.AddressSpace)
		} else {
			addr = (base + rng.Intn(c.WorkingSet)) % c.AddressSpace
		}
		trace[i] = uint64(addr)
	}
	return trace, nil
}

// WorkingSetSizes computes the Denning working-set size |W(t, window)| at
// each multiple of the window over the trace: the number of distinct
// addresses referenced in the last window references.
func WorkingSetSizes(trace []uint64, window int) []int {
	if window <= 0 || len(trace) == 0 {
		return nil
	}
	var sizes []int
	for end := window; end <= len(trace); end += window {
		seen := make(map[uint64]struct{})
		for _, a := range trace[end-window : end] {
			seen[a] = struct{}{}
		}
		sizes = append(sizes, len(seen))
	}
	return sizes
}

// AverageWorkingSet returns the mean of WorkingSetSizes.
func AverageWorkingSet(trace []uint64, window int) float64 {
	sizes := WorkingSetSizes(trace, window)
	if len(sizes) == 0 {
		return 0
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	return float64(total) / float64(len(sizes))
}
