// Command uhmbench regenerates every table and figure of the paper's
// evaluation from the reproduction: the analytic Tables 2 and 3, the Table 1
// format comparison, and the measured counterparts of Figures 1–4 plus the
// empirical Section 7 cross-check and the §3.2 compaction study.
//
// The grid experiments run on the parallel engine by default (one worker per
// CPU); -parallel=false selects the serial engine, which produces the same
// bytes cell for cell.  An interrupt (Ctrl-C) cancels the sweep.
//
// Usage:
//
//	uhmbench -exp all
//	uhmbench -exp table2
//	uhmbench -exp figure2 -workload sieve
//	uhmbench -exp empirical -parallel=false
//
// The -cpuprofile and -memprofile flags write pprof profiles of the run, so
// performance work on the experiment engine can be driven by evidence:
//
//	uhmbench -exp empirical -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"uhm/internal/core"
)

func main() {
	// All error paths return through realMain so deferred cleanups — above
	// all flushing the CPU profile — run before the process exits; os.Exit
	// would skip them and leave a truncated profile exactly on the failing
	// or interrupted runs one most wants to inspect.
	os.Exit(realMain())
}

func realMain() int {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, figure1, figure2, figure3, figure4, empirical, compaction, all")
	workloadName := flag.String("workload", "", "workload for the figure experiments (default chosen per experiment)")
	parallel := flag.Bool("parallel", true, "run experiment grids on the parallel engine")
	workers := flag.Int("workers", 0, "worker-pool size for the parallel engine (0 = one per CPU)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uhmbench: -cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "uhmbench: -cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	engine := core.Engine{Workers: *workers}
	if !*parallel {
		engine = core.SerialEngine()
	}
	cfg := core.DefaultConfig()
	err := run(ctx, engine, *exp, *workloadName, cfg)

	// Report a memprofile failure without eclipsing the run's own error —
	// the run outcome is the primary signal.
	status := 0
	if *memProfile != "" {
		if merr := writeMemProfile(*memProfile); merr != nil {
			fmt.Fprintln(os.Stderr, "uhmbench: -memprofile:", merr)
			status = 1
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uhmbench:", err)
		status = 1
	}
	return status
}

func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // flush recent frees so the profile reflects live heap
	return pprof.WriteHeapProfile(f)
}

func run(ctx context.Context, engine core.Engine, exp, workloadName string, cfg core.Config) error {
	experiments := strings.Split(exp, ",")
	if exp == "all" {
		experiments = []string{"table1", "table2", "table3", "figure1", "figure2", "figure3", "figure4", "empirical", "compaction"}
	}
	for _, e := range experiments {
		if err := runOne(ctx, engine, strings.TrimSpace(e), workloadName, cfg); err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(ctx context.Context, engine core.Engine, exp, workloadName string, cfg core.Config) error {
	switch exp {
	case "table1":
		fmt.Print(core.Table1Report())
	case "table2":
		t, err := engine.Table2(ctx)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
	case "table3":
		t, err := engine.Table3(ctx)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
	case "figure1":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Figure1(ctx, workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure1(rows))
	case "figure2":
		org, rows, err := engine.Figure2(ctx, workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure2(org, rows))
	case "figure3":
		act, err := core.Figure3(workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure3(act))
	case "figure4":
		stats, err := core.Figure4(workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure4(stats))
	case "empirical":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Empirical(ctx, workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderEmpirical(rows))
	case "compaction":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Compaction(ctx, workloads, core.LevelStack)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderCompaction(rows))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
