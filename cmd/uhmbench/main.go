// Command uhmbench regenerates every table and figure of the paper's
// evaluation from the reproduction: the analytic Tables 2 and 3, the Table 1
// format comparison, and the measured counterparts of Figures 1–4 plus the
// empirical Section 7 cross-check and the §3.2 compaction study.
//
// The grid experiments run on the parallel engine by default (one worker per
// CPU); -parallel=false selects the serial engine, which produces the same
// bytes cell for cell.  An interrupt (Ctrl-C) cancels the sweep.
//
// Usage:
//
//	uhmbench -exp all
//	uhmbench -exp table2
//	uhmbench -exp figure2 -workload sieve
//	uhmbench -exp empirical -parallel=false
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"uhm/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, figure1, figure2, figure3, figure4, empirical, compaction, all")
	workloadName := flag.String("workload", "", "workload for the figure experiments (default chosen per experiment)")
	parallel := flag.Bool("parallel", true, "run experiment grids on the parallel engine")
	workers := flag.Int("workers", 0, "worker-pool size for the parallel engine (0 = one per CPU)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engine := core.Engine{Workers: *workers}
	if !*parallel {
		engine = core.SerialEngine()
	}
	cfg := core.DefaultConfig()
	if err := run(ctx, engine, *exp, *workloadName, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "uhmbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, engine core.Engine, exp, workloadName string, cfg core.Config) error {
	experiments := strings.Split(exp, ",")
	if exp == "all" {
		experiments = []string{"table1", "table2", "table3", "figure1", "figure2", "figure3", "figure4", "empirical", "compaction"}
	}
	for _, e := range experiments {
		if err := runOne(ctx, engine, strings.TrimSpace(e), workloadName, cfg); err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(ctx context.Context, engine core.Engine, exp, workloadName string, cfg core.Config) error {
	switch exp {
	case "table1":
		fmt.Print(core.Table1Report())
	case "table2":
		t, err := engine.Table2(ctx)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
	case "table3":
		t, err := engine.Table3(ctx)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
	case "figure1":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Figure1(ctx, workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure1(rows))
	case "figure2":
		org, rows, err := engine.Figure2(ctx, workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure2(org, rows))
	case "figure3":
		act, err := core.Figure3(workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure3(act))
	case "figure4":
		stats, err := core.Figure4(workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure4(stats))
	case "empirical":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Empirical(ctx, workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderEmpirical(rows))
	case "compaction":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Compaction(ctx, workloads, core.LevelStack)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderCompaction(rows))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
