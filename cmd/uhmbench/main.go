// Command uhmbench regenerates every table and figure of the paper's
// evaluation from the reproduction: the analytic Tables 2 and 3, the Table 1
// format comparison, and the measured counterparts of Figures 1–4 plus the
// empirical Section 7 cross-check and the §3.2 compaction study.
//
// The grid experiments run on the parallel engine by default (one worker per
// CPU); -parallel=false selects the serial engine, which produces the same
// bytes cell for cell.  An interrupt (Ctrl-C) cancels the sweep.
//
// Grid cells derive their cost reports from each program's shared execution
// trace by default (-mode derived); -mode simulated restores the full
// interleaved execute-and-cost loop, and -mode crosscheck runs both and fails
// on any field divergence.  All three produce identical reports.
//
// Usage:
//
//	uhmbench -exp all
//	uhmbench -exp table2
//	uhmbench -exp figure2 -workload sieve
//	uhmbench -exp empirical -parallel=false
//
// The archsweep and modelerr experiments extend the evaluation beyond the
// paper's phase space using the generator's workload archetypes (recursion,
// kernel, phased, dispatch — controlled locality profiles): archsweep charts
// DTB hit-ratio sensitivity per archetype over the Figure 2 capacity axis,
// and modelerr runs the §7 analytic predictions (T1–T4, F1–F3) against
// measured values over -programs generated programs per archetype, reporting
// the signed-error distribution (optionally as JSON via -json):
//
//	uhmbench -exp archsweep -programs 8
//	uhmbench -exp modelerr -programs 50 -json MODEL_ERROR.json
//
// The -gen flag switches uhmbench into differential-conformance mode: it
// generates N seeded random MiniLang programs (starting at -seed) and runs
// each through the full cross-product of semantic levels, encoding degrees
// and machine organisations — all five, including the closure-compiled
// backend — checking the paper's equivalence invariant.  On
// divergence it prints the reproducer seed, shrinks the program to a minimal
// failing reproducer, and exits nonzero.  -gen-archetype restricts the sweep
// to one archetype's programs (or "all" for every archetype in turn):
//
//	uhmbench -gen 1000 -seed 1
//	uhmbench -gen 500 -seed 1 -gen-archetype dispatch
//
// The -chaos flag runs the service layer's chaos conformance sweep instead:
// N seeded fault-injection plans (starting at -seed), each driving a
// concurrent mixed workload against a fresh service while faults — build
// failures, forced evictions, checkout failures, trace storms, run panics —
// fire deterministically, asserting the robustness invariants (no leaked
// replayers, exact footprint accounting, retry-after-failure, correct-or-
// structured-error, drain termination).  On violation it prints the
// reproducer seed and exits nonzero:
//
//	uhmbench -chaos 200 -seed 1
//
// The -cpuprofile and -memprofile flags write pprof profiles of the run, so
// performance work on the experiment engine can be driven by evidence:
//
//	uhmbench -exp empirical -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"sync"

	"uhm/internal/core"
	"uhm/internal/faultinject"
	"uhm/internal/service"
	"uhm/internal/workload"
	"uhm/internal/workload/gen"
)

func main() {
	// All error paths return through realMain so deferred cleanups — above
	// all flushing the CPU profile — run before the process exits; os.Exit
	// would skip them and leave a truncated profile exactly on the failing
	// or interrupted runs one most wants to inspect.
	os.Exit(realMain())
}

func realMain() int {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, figure1, figure2, figure3, figure4, empirical, compaction, archsweep, modelerr, all")
	workloadName := flag.String("workload", "", "workload for the figure experiments (default chosen per experiment)")
	parallel := flag.Bool("parallel", true, "run experiment grids on the parallel engine")
	workers := flag.Int("workers", 0, "worker-pool size for the parallel engine and the conformance sweep (0 = one per CPU)")
	mode := flag.String("mode", "derived", "how grid cells produce reports: derived (trace-once, cost-many), simulated (full interleaved loop), crosscheck (both, fail on divergence)")
	genCount := flag.Int("gen", 0, "conformance mode: check this many generated programs instead of running experiments")
	genArchetype := flag.String("gen-archetype", "", "generator archetype for -gen and the archetype experiments: "+strings.Join(workload.ArchetypeNames(), ", ")+", a comma list, or all (empty = uniform generator / full catalogue)")
	programs := flag.Int("programs", 0, "archsweep/modelerr: generated programs per archetype (0 = default)")
	jsonPath := flag.String("json", "", "modelerr: also write the machine-readable error distribution to this file")
	chaosCount := flag.Int("chaos", 0, "chaos mode: run this many seeded fault-injection plans instead of experiments")
	genSeed := flag.Int64("seed", 1, "first seed of the conformance or chaos sweep, and of archetype program populations")
	noMinimize := flag.Bool("nominimize", false, "conformance mode: skip shrinking failing programs")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uhmbench: -cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "uhmbench: -cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// Experiment sweeps go through the service layer's registry-backed
	// engine — the same artifact cache and build path cmd/uhmd serves — so
	// bench runs and server traffic exercise identical code.  The serial
	// engine is the one-worker service.
	engineWorkers := *workers
	if !*parallel {
		engineWorkers = 1
	}
	svc := service.New(service.Options{Workers: engineWorkers})
	engine := svc.Engine()
	runMode, err := core.ParseRunMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uhmbench: -mode:", err)
		return 1
	}
	engine.Mode = runMode
	cfg := core.DefaultConfig()
	archetypes, err := parseArchetypes(*genArchetype)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uhmbench: -gen-archetype:", err)
		return 1
	}
	opts := expOptions{
		workload:   *workloadName,
		archetypes: archetypes,
		programs:   *programs,
		seed:       *genSeed,
		jsonPath:   *jsonPath,
	}
	switch {
	case *chaosCount > 0:
		err = runChaos(ctx, *genSeed, *chaosCount)
	case *genCount > 0:
		err = runConformance(ctx, archetypes, *genSeed, *genCount, *workers, !*noMinimize, cfg)
	default:
		err = run(ctx, engine, *exp, opts, cfg)
	}

	// Report a memprofile failure without eclipsing the run's own error —
	// the run outcome is the primary signal.
	status := 0
	if *memProfile != "" {
		if merr := writeMemProfile(*memProfile); merr != nil {
			fmt.Fprintln(os.Stderr, "uhmbench: -memprofile:", merr)
			status = 1
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uhmbench:", err)
		status = 1
	}
	return status
}

func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // flush recent frees so the profile reflects live heap
	return pprof.WriteHeapProfile(f)
}

// knownExperiments lists every experiment name, in the order "all" runs them.
var knownExperiments = []string{
	"table1", "table2", "table3",
	"figure1", "figure2", "figure3", "figure4",
	"empirical", "compaction",
	"archsweep", "modelerr",
}

// expOptions carries the per-experiment flag surface into runOne.
type expOptions struct {
	// workload selects the figure experiments' workload.
	workload string
	// archetypes restricts archsweep/modelerr (nil = full catalogue).
	archetypes []string
	// programs is the population size per archetype (0 = default).
	programs int
	// seed is the first program seed of each archetype population.
	seed int64
	// jsonPath, when set, receives modelerr's machine-readable artifact.
	jsonPath string
}

// parseArchetypes expands the -gen-archetype flag: empty keeps the default
// (uniform generator for -gen, full catalogue for the experiments), "all"
// expands to the catalogue, and a comma list is validated name by name.
func parseArchetypes(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		return workload.ArchetypeNames(), nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := gen.ArchetypeByName(name); err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no archetype named in %q", s)
	}
	return out, nil
}

// parseExperiments expands and validates the -exp flag: a comma-separated
// experiment list, or "all".
func parseExperiments(exp string) ([]string, error) {
	if strings.TrimSpace(exp) == "all" {
		return knownExperiments, nil
	}
	var out []string
	for _, e := range strings.Split(exp, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !slices.Contains(knownExperiments, e) {
			return nil, fmt.Errorf("unknown experiment %q (have %s, all)", e, strings.Join(knownExperiments, ", "))
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiment named in %q", exp)
	}
	return out, nil
}

func run(ctx context.Context, engine core.Engine, exp string, opts expOptions, cfg core.Config) error {
	experiments, err := parseExperiments(exp)
	if err != nil {
		return err
	}
	for _, e := range experiments {
		if err := runOne(ctx, engine, e, opts, cfg); err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Println()
	}
	return nil
}

// runChaos is the -chaos mode: n seeded fault plans through the service
// layer's chaos harness, reporting every broken robustness invariant.
func runChaos(ctx context.Context, seed int64, n int) error {
	fmt.Printf("chaos: running %d seeded fault plans (seeds %d..%d)\n", n, seed, seed+int64(n)-1)
	lastPct := -1
	res, err := service.ChaosSweep(ctx, seed, n, service.ChaosOptions{}, func(done, violations int) {
		pct := done * 100 / n
		if pct/10 > lastPct/10 {
			lastPct = pct
			fmt.Printf("  %3d%% (%d/%d plans, %d violations)\n", pct, done, n, violations)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaos: %d plans, %d requests, %d injected faults across %d sites\n",
		res.Plans, res.Requests, sumFires(res.Fired), len(res.Fired))
	if len(res.Violations) == 0 {
		fmt.Println("chaos: every invariant held on every plan")
		return nil
	}
	for i, v := range res.Violations {
		if i >= 16 {
			fmt.Printf("  ... %d more\n", len(res.Violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
		fmt.Printf("  reproduce: uhmbench -chaos 1 -seed %d\n", v.Seed)
	}
	return fmt.Errorf("chaos: %d invariant violation(s) across %d plans", len(res.Violations), res.Plans)
}

func sumFires(fired map[faultinject.Site]int64) int64 {
	var total int64
	for _, c := range fired {
		total += c
	}
	return total
}

// runConformance is the -gen mode: a differential sweep of the generator's
// seed range through the full level × degree × strategy cross-product.  An
// archetype list runs one sweep per archetype; nil sweeps the uniform
// generator.
func runConformance(ctx context.Context, archetypes []string, seed int64, n, workers int, minimize bool, cfg core.Config) error {
	if len(archetypes) == 0 {
		return runConformanceOne(ctx, "", seed, n, workers, minimize, cfg)
	}
	for _, a := range archetypes {
		if err := runConformanceOne(ctx, a, seed, n, workers, minimize, cfg); err != nil {
			return err
		}
	}
	return nil
}

func runConformanceOne(ctx context.Context, archetype string, seed int64, n, workers int, minimize bool, cfg core.Config) error {
	population := "generated programs"
	if archetype != "" {
		population = fmt.Sprintf("%q archetype programs", archetype)
	}
	fmt.Printf("conformance: checking %d %s (seeds %d..%d) across %d levels x %d degrees x %d strategies\n",
		n, population, seed, seed+int64(n)-1, len(core.Levels()), len(core.Degrees()), len(core.Strategies()))
	// The progress callback is invoked concurrently from the sweep's workers.
	var progressMu sync.Mutex
	lastPct := -1
	res, err := core.ConformanceSweepArchetype(ctx, archetype, seed, n, workers, cfg, func(done, failed int) {
		progressMu.Lock()
		defer progressMu.Unlock()
		pct := done * 100 / n
		if pct/10 > lastPct/10 {
			lastPct = pct
			fmt.Printf("  %3d%% (%d/%d checked, %d failing)\n", pct, done, n, failed)
		}
	})
	if err != nil {
		return err
	}
	if len(res.Failing) == 0 {
		fmt.Printf("conformance: all %d programs conform on every point of the cross-product\n", res.Seeds)
		return nil
	}
	repro := ""
	if archetype != "" {
		repro = fmt.Sprintf(" -gen-archetype %s", archetype)
	}
	for _, f := range res.Failing {
		fmt.Printf("\nseed %d (%s): %d divergence(s)\n", f.Seed, f.Name, len(f.Divergences))
		for i, d := range f.Divergences {
			if i >= 8 {
				fmt.Printf("  ... %d more\n", len(f.Divergences)-i)
				break
			}
			fmt.Printf("  %s\n", d)
		}
		fmt.Printf("  reproduce: uhmbench -gen 1 -seed %d%s\n", f.Seed, repro)
	}
	if minimize {
		first := res.Failing[0]
		fmt.Printf("\nminimizing seed %d ...\n", first.Seed)
		fails := func(src string) bool {
			divs, err := core.CheckConformance("minimize", src, cfg)
			return err == nil && len(divs) > 0
		}
		minSrc, err := gen.Minimize(first.Source, fails)
		if err != nil {
			fmt.Printf("minimizer: %v\n", err)
		}
		divs, _ := core.CheckConformance("minimized", minSrc, cfg)
		fmt.Printf("minimal failing program (%d bytes, %d divergence(s)):\n%s\n", len(minSrc), len(divs), minSrc)
		for i, d := range divs {
			if i >= 4 {
				break
			}
			fmt.Printf("  %s\n", d)
		}
	}
	return fmt.Errorf("conformance: %d of %d generated programs diverged", len(res.Failing), res.Seeds)
}

func runOne(ctx context.Context, engine core.Engine, exp string, opts expOptions, cfg core.Config) error {
	workloadName := opts.workload
	switch exp {
	case "table1":
		fmt.Print(core.Table1Report())
	case "table2":
		t, err := engine.Table2(ctx)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
	case "table3":
		t, err := engine.Table3(ctx)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
	case "figure1":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Figure1(ctx, workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure1(rows))
	case "figure2":
		org, rows, err := engine.Figure2(ctx, workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure2(org, rows))
	case "figure3":
		act, err := engine.Figure3(ctx, workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure3(act))
	case "figure4":
		stats, err := engine.Figure4(ctx, workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure4(stats))
	case "empirical":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Empirical(ctx, workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderEmpirical(rows))
	case "compaction":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := engine.Compaction(ctx, workloads, core.LevelStack)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderCompaction(rows))
	case "archsweep":
		rows, err := engine.ArchetypeSweep(ctx, opts.archetypes, opts.programs, opts.seed, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderArchetypeSweep(rows))
	case "modelerr":
		v, err := engine.ModelValidation(ctx, opts.archetypes, opts.programs, opts.seed, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderModelValidation(v))
		if opts.jsonPath != "" {
			doc, err := core.ModelValidationJSON(v, "uhmbench")
			if err != nil {
				return err
			}
			if err := os.WriteFile(opts.jsonPath, doc, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", opts.jsonPath, len(doc))
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
