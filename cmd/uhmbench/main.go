// Command uhmbench regenerates every table and figure of the paper's
// evaluation from the reproduction: the analytic Tables 2 and 3, the Table 1
// format comparison, and the measured counterparts of Figures 1–4 plus the
// empirical Section 7 cross-check and the §3.2 compaction study.
//
// Usage:
//
//	uhmbench -exp all
//	uhmbench -exp table2
//	uhmbench -exp figure2 -workload sieve
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uhm/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, figure1, figure2, figure3, figure4, empirical, compaction, all")
	workloadName := flag.String("workload", "", "workload for the figure experiments (default chosen per experiment)")
	flag.Parse()

	cfg := core.DefaultConfig()
	if err := run(*exp, *workloadName, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "uhmbench:", err)
		os.Exit(1)
	}
}

func run(exp, workloadName string, cfg core.Config) error {
	experiments := strings.Split(exp, ",")
	if exp == "all" {
		experiments = []string{"table1", "table2", "table3", "figure1", "figure2", "figure3", "figure4", "empirical", "compaction"}
	}
	for _, e := range experiments {
		if err := runOne(strings.TrimSpace(e), workloadName, cfg); err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(exp, workloadName string, cfg core.Config) error {
	switch exp {
	case "table1":
		fmt.Print(core.Table1Report())
	case "table2":
		fmt.Print(core.Table2().Render())
	case "table3":
		fmt.Print(core.Table3().Render())
	case "figure1":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := core.Figure1(workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure1(rows))
	case "figure2":
		org, rows, err := core.Figure2(workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure2(org, rows))
	case "figure3":
		act, err := core.Figure3(workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure3(act))
	case "figure4":
		stats, err := core.Figure4(workloadName, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure4(stats))
	case "empirical":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := core.Empirical(workloads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderEmpirical(rows))
	case "compaction":
		var workloads []string
		if workloadName != "" {
			workloads = []string{workloadName}
		}
		rows, err := core.Compaction(workloads, core.LevelStack)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderCompaction(rows))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
