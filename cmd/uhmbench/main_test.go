package main

import (
	"context"
	"slices"
	"testing"

	"uhm/internal/workload"
)

func TestParseExperiments(t *testing.T) {
	all, err := parseExperiments("all")
	if err != nil {
		t.Fatalf("parseExperiments(all): %v", err)
	}
	if !slices.Equal(all, knownExperiments) {
		t.Errorf("parseExperiments(all) = %v, want %v", all, knownExperiments)
	}

	got, err := parseExperiments("table2, figure1 ,empirical")
	if err != nil {
		t.Fatalf("parseExperiments(list): %v", err)
	}
	if want := []string{"table2", "figure1", "empirical"}; !slices.Equal(got, want) {
		t.Errorf("parseExperiments(list) = %v, want %v", got, want)
	}

	for _, bad := range []string{"", ",", "table9", "table2,bogus"} {
		if _, err := parseExperiments(bad); err == nil {
			t.Errorf("parseExperiments(%q) succeeded, want error", bad)
		}
	}
}

func TestKnownExperimentsDistinctAndParsable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range knownExperiments {
		if seen[e] {
			t.Errorf("experiment %q listed twice", e)
		}
		seen[e] = true
		got, err := parseExperiments(e)
		if err != nil {
			t.Errorf("parseExperiments(%q): %v", e, err)
		}
		if !slices.Equal(got, []string{e}) {
			t.Errorf("parseExperiments(%q) = %v", e, got)
		}
	}
}

func TestParseArchetypes(t *testing.T) {
	if got, err := parseArchetypes(""); err != nil || got != nil {
		t.Errorf("parseArchetypes(\"\") = %v, %v; want nil, nil", got, err)
	}
	all, err := parseArchetypes("all")
	if err != nil {
		t.Fatalf("parseArchetypes(all): %v", err)
	}
	if !slices.Equal(all, workload.ArchetypeNames()) {
		t.Errorf("parseArchetypes(all) = %v, want the catalogue %v", all, workload.ArchetypeNames())
	}
	got, err := parseArchetypes("kernel, dispatch")
	if err != nil {
		t.Fatalf("parseArchetypes(list): %v", err)
	}
	if want := []string{"kernel", "dispatch"}; !slices.Equal(got, want) {
		t.Errorf("parseArchetypes(list) = %v, want %v", got, want)
	}
	for _, bad := range []string{",", "bogus", "kernel,bogus"} {
		if _, err := parseArchetypes(bad); err == nil {
			t.Errorf("parseArchetypes(%q) succeeded, want error", bad)
		}
	}
}

// TestRunChaosSinglePlan drives the -chaos mode end to end on one seeded
// plan: it must complete without violations (the chaos invariants are pinned
// exhaustively by the service package's TestChaosSmoke; this covers the CLI
// wiring and its error contract).
func TestRunChaosSinglePlan(t *testing.T) {
	if err := runChaos(context.Background(), 1, 1); err != nil {
		t.Fatalf("runChaos: %v", err)
	}
}
