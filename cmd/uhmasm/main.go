// Command uhmasm compiles a MiniLang program to its DIR, prints the
// disassembly, and reports the static size of every encoding degree together
// with the size of the fully expanded PSDER form — a per-program view of the
// representation space of Figure 1.
//
// Usage:
//
//	uhmasm -workload sieve -level mem3
//	uhmasm -file prog.ml -disasm=false
package main

import (
	"flag"
	"fmt"
	"os"

	"uhm/internal/core"
	"uhm/internal/metrics"
	"uhm/internal/translate"
)

func main() {
	workloadName := flag.String("workload", "", "built-in workload to compile")
	file := flag.String("file", "", "MiniLang source file to compile")
	levelName := flag.String("level", "stack", "semantic level: stack, mem2, mem3")
	disasm := flag.Bool("disasm", true, "print the DIR disassembly")
	flag.Parse()

	if err := run(*workloadName, *file, *levelName, *disasm); err != nil {
		fmt.Fprintln(os.Stderr, "uhmasm:", err)
		os.Exit(1)
	}
}

func run(workloadName, file, levelName string, disasm bool) error {
	level, err := parseLevel(levelName)
	if err != nil {
		return err
	}

	var art *core.Artifact
	switch {
	case workloadName != "":
		art, err = core.BuildWorkload(workloadName, level)
	case file != "":
		var src []byte
		src, err = os.ReadFile(file)
		if err == nil {
			art, err = core.BuildSource(file, string(src), level)
		}
	default:
		err = fmt.Errorf("specify -workload or -file")
	}
	if err != nil {
		return err
	}

	if disasm {
		fmt.Print(art.Disassemble())
		fmt.Println()
	}

	tbl := metrics.NewTable("static representation sizes", "representation", "size", "avg bits/instr", "decoder tables")
	for _, degree := range core.Degrees() {
		bin, err := art.Encode(degree)
		if err != nil {
			return err
		}
		tbl.AddRow("DIR/"+degree.String(), metrics.Bits(bin.SizeBits()),
			metrics.Float(bin.AvgInstrBits()), metrics.Bits(bin.CodebookBits()))
	}
	seqs, err := translate.TranslateProgram(art.DIR)
	if err != nil {
		return err
	}
	cost := translate.Cost(seqs)
	tbl.AddRow("PSDER (expanded)", metrics.Bits(cost.TotalWords*32), metrics.Float(cost.AvgWords*32), "0 bits (0.0 bytes)")
	fmt.Print(tbl.Render())
	return nil
}

// parseLevel delegates to core, the single source of truth shared with
// uhmrun and the uhmd server.
func parseLevel(name string) (core.Level, error) { return core.ParseLevel(name) }
