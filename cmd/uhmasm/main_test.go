package main

import (
	"testing"

	"uhm/internal/core"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]core.Level{
		"stack": core.LevelStack,
		"mem2":  core.LevelMem2,
		"mem3":  core.LevelMem3,
	}
	for name, want := range cases {
		got, err := parseLevel(name)
		if err != nil {
			t.Fatalf("parseLevel(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("parseLevel(%q) = %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"", "psder", "stack,mem2"} {
		if _, err := parseLevel(bad); err == nil {
			t.Errorf("parseLevel(%q) succeeded, want error", bad)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "stack", false); err == nil {
		t.Error("run without -workload or -file succeeded, want error")
	}
	if err := run("fib", "", "nope", false); err == nil {
		t.Error("run with an unknown level succeeded, want error")
	}
}
