package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uhm/internal/core"
	"uhm/internal/store"
)

const testSrc = `
program arttest;
var i, acc;
begin
  i := 0;
  acc := 1;
  while i < 7 do
  begin
    acc := acc + acc;
    i := i + 1
  end;
  print acc
end.`

// populatedStore builds one enriched artifact into a fresh store directory
// and returns the directory and the artifact's content address.
func populatedStore(t *testing.T) (string, [sha256.Size]byte) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.BuildSource("arttest", testSrc, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := art.Predecoded(core.DefaultConfig().Degree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Trace(); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(art.Snapshot(), testSrc); err != nil {
		t.Fatal(err)
	}
	return dir, sha256.Sum256([]byte(testSrc))
}

func runCmd(t *testing.T, cmd string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := dispatch(cmd, args, &out)
	return out.String(), err
}

func TestLs(t *testing.T) {
	dir, key := populatedStore(t)
	out, err := runCmd(t, "ls", "-store", dir)
	if err != nil {
		t.Fatal(err)
	}
	short := hex.EncodeToString(key[:])[:16]
	if !strings.Contains(out, short) || !strings.Contains(out, "stack") ||
		!strings.Contains(out, "1 containers") {
		t.Fatalf("ls output missing entry:\n%s", out)
	}
	if _, err := runCmd(t, "ls", "-store", dir, "extra"); err == nil {
		t.Fatal("ls accepted positional arguments")
	}
}

func TestVerify(t *testing.T) {
	dir, key := populatedStore(t)
	out, err := runCmd(t, "verify", "-store", dir)
	if err != nil {
		t.Fatalf("verify failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok") || !strings.Contains(out, "1 containers verified") {
		t.Fatalf("verify output:\n%s", out)
	}

	// Prefix selection, case-insensitive.
	prefix := strings.ToUpper(hex.EncodeToString(key[:])[:8])
	if _, err := runCmd(t, "verify", "-store", dir, prefix); err != nil {
		t.Fatalf("verify by prefix: %v", err)
	}
	if _, err := runCmd(t, "verify", "-store", dir, "ffff0000"); err == nil {
		t.Fatal("verify accepted an unmatched prefix")
	}

	// Corrupt the container: verify must FAIL and return an error.
	files, _ := filepath.Glob(filepath.Join(dir, "*.uhma"))
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCmd(t, "verify", "-store", dir)
	if err == nil {
		t.Fatalf("verify of corrupt store succeeded:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("verify output lacks FAIL line:\n%s", out)
	}
}

func TestExportImport(t *testing.T) {
	dir, key := populatedStore(t)
	bundle := filepath.Join(t.TempDir(), "artifacts.bundle")
	out, err := runCmd(t, "export", "-store", dir, "-o", bundle)
	if err != nil {
		t.Fatalf("export: %v\n%s", err, out)
	}

	dst := t.TempDir()
	out, err = runCmd(t, "import", "-store", dst, bundle)
	if err != nil {
		t.Fatalf("import: %v\n%s", err, out)
	}
	if !strings.Contains(out, "1 containers imported") || !strings.Contains(out, "arttest") {
		t.Fatalf("import output:\n%s", out)
	}
	st, err := store.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	img, err := st.Get(key, core.LevelStack)
	if err != nil {
		t.Fatalf("imported container unreadable: %v", err)
	}
	if _, err := img.Artifact(); err != nil {
		t.Fatalf("imported container does not rehydrate: %v", err)
	}

	// export to stdout ("-") writes the raw bundle bytes.
	raw, err := os.ReadFile(bundle)
	if err != nil {
		t.Fatal(err)
	}
	out, err = runCmd(t, "export", "-store", dir, "-o", "-")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(raw) {
		t.Fatal("stdout export differs from file export")
	}

	// A truncated bundle is refused whole.
	if err := os.WriteFile(bundle, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	empty := t.TempDir()
	if _, err := runCmd(t, "import", "-store", empty, bundle); err == nil {
		t.Fatal("import accepted a truncated bundle")
	}
}

func TestDispatchErrors(t *testing.T) {
	if _, err := runCmd(t, "frobnicate"); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Fatalf("unknown subcommand error = %v", err)
	}
	for _, cmd := range []string{"ls", "verify", "export", "import"} {
		if _, err := runCmd(t, cmd); err == nil {
			t.Fatalf("%s without -store succeeded", cmd)
		}
	}
	if _, err := runCmd(t, "export", "-store", t.TempDir()); err == nil {
		t.Fatal("export without -o succeeded")
	}
	if _, err := runCmd(t, "import", "-store", t.TempDir()); err == nil {
		t.Fatal("import without files succeeded")
	}
	if out, err := runCmd(t, "help"); err != nil || !strings.Contains(out, "usage:") {
		t.Fatalf("help = %v:\n%s", err, out)
	}
}
