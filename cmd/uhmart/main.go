// Command uhmart manages the persistent artifact store that uhmd's
// -store-dir points at: the operations tooling for shipping built artifacts
// between machines without shipping the build.
//
// Subcommands:
//
//	uhmart ls     -store DIR                  list containers, hottest first
//	uhmart verify -store DIR [PREFIX...]      verify containers end to end
//	uhmart export -store DIR -o FILE [PREFIX...]   write containers to a bundle
//	uhmart import -store DIR FILE...          load bundles into the store
//
// PREFIX selects containers by hex source-hash prefix; no prefix selects all.
// A bundle is a plain concatenation of containers, so bundles can themselves
// be concatenated.  Every import re-verifies each container's content hash
// before it is admitted; verify goes further and re-encodes each stored
// binary from its DIR program, proving bit identity — the decode tables a
// rehydrating process rebuilds will walk exactly the bits the writing
// process measured.
package main

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"uhm/internal/dir"
	"uhm/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprint(os.Stderr, usage)
		os.Exit(2)
	}
	if err := dispatch(os.Args[1], os.Args[2:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uhmart:", err)
		os.Exit(1)
	}
}

const usage = `usage:
  uhmart ls     -store DIR                      list containers, hottest first
  uhmart verify -store DIR [PREFIX...]          verify containers end to end
  uhmart export -store DIR -o FILE [PREFIX...]  write containers to a bundle
  uhmart import -store DIR FILE...              load bundles into the store
`

// dispatch routes one subcommand; tests drive it directly with an argument
// vector and a capture buffer.
func dispatch(cmd string, args []string, out io.Writer) error {
	switch cmd {
	case "ls":
		return cmdLs(args, out)
	case "verify":
		return cmdVerify(args, out)
	case "export":
		return cmdExport(args, out)
	case "import":
		return cmdImport(args, out)
	case "help", "-h", "--help":
		fmt.Fprint(out, usage)
		return nil
	}
	return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
}

// openStore parses the common -store flag (plus any extra flags the caller
// bound on fs) and opens the store.
func openStore(fs *flag.FlagSet, args []string) (*store.Store, []string, error) {
	storeDir := fs.String("store", "", "artifact store directory")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	if *storeDir == "" {
		return nil, nil, fmt.Errorf("-store is required")
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		return nil, nil, err
	}
	return st, fs.Args(), nil
}

// selectEntries filters the listing by hex source-hash prefixes (empty
// selects everything).  An unmatched prefix is an error — a typo must not
// silently export or verify nothing.
func selectEntries(st *store.Store, prefixes []string) ([]store.Entry, error) {
	entries, err := st.List()
	if err != nil {
		return nil, err
	}
	if len(prefixes) == 0 {
		return entries, nil
	}
	var out []store.Entry
	for _, prefix := range prefixes {
		matched := false
		for _, e := range entries {
			if strings.HasPrefix(hex.EncodeToString(e.Hash[:]), strings.ToLower(prefix)) {
				out = append(out, e)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("no container matches prefix %q", prefix)
		}
	}
	return out, nil
}

func cmdLs(args []string, out io.Writer) error {
	st, rest, err := openStore(flag.NewFlagSet("uhmart ls", flag.ContinueOnError), args)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ls takes no positional arguments (got %q)", rest)
	}
	entries, err := st.List()
	if err != nil {
		return err
	}
	var total int64
	for _, e := range entries {
		fmt.Fprintf(out, "%s  %-5s  %8d B  %s\n",
			hex.EncodeToString(e.Hash[:])[:16], e.Level, e.Bytes,
			e.ModTime.UTC().Format(time.RFC3339))
		total += e.Bytes
	}
	fmt.Fprintf(out, "%d containers, %d bytes\n", len(entries), total)
	return nil
}

func cmdVerify(args []string, out io.Writer) error {
	st, prefixes, err := openStore(flag.NewFlagSet("uhmart verify", flag.ContinueOnError), args)
	if err != nil {
		return err
	}
	entries, err := selectEntries(st, prefixes)
	if err != nil {
		return err
	}
	failed := 0
	for _, e := range entries {
		short := hex.EncodeToString(e.Hash[:])[:16]
		if err := verifyEntry(st, e); err != nil {
			failed++
			fmt.Fprintf(out, "FAIL  %s  %-5s  %v\n", short, e.Level, err)
			continue
		}
		fmt.Fprintf(out, "ok    %s  %-5s\n", short, e.Level)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d containers failed verification", failed, len(entries))
	}
	fmt.Fprintf(out, "%d containers verified\n", len(entries))
	return nil
}

// verifyEntry checks one container end to end: the content hash and
// structure (Decode), the rehydration path (Artifact), and bit identity —
// each stored binary must equal a fresh encode of its DIR program, byte for
// byte, which pins the determinism the rehydration fast path relies on.
func verifyEntry(st *store.Store, e store.Entry) error {
	data, err := st.GetRaw(e.Hash, e.Level)
	if err != nil {
		return err
	}
	img, err := store.Decode(data)
	if err != nil {
		return err
	}
	if _, err := img.Artifact(); err != nil {
		return fmt.Errorf("rehydrate: %w", err)
	}
	for _, bin := range img.Snap.Binaries {
		fresh, err := dir.Encode(img.Snap.DIR, bin.Degree)
		if err != nil {
			return fmt.Errorf("re-encode degree %v: %w", bin.Degree, err)
		}
		if fresh.SizeBits() != bin.SizeBits() || !bytes.Equal(fresh.Bytes(), bin.Bytes()) {
			return fmt.Errorf("degree %v: stored bits differ from a fresh encode", bin.Degree)
		}
	}
	return nil
}

func cmdExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("uhmart export", flag.ContinueOnError)
	output := fs.String("o", "", "bundle file to write (\"-\" = stdout)")
	st, prefixes, err := openStore(fs, args)
	if err != nil {
		return err
	}
	if *output == "" {
		return fmt.Errorf("-o is required")
	}
	entries, err := selectEntries(st, prefixes)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("store is empty, nothing to export")
	}
	var bundle []byte
	for _, e := range entries {
		data, err := st.GetRaw(e.Hash, e.Level)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", hex.EncodeToString(e.Hash[:])[:16], e.Level, err)
		}
		bundle = append(bundle, data...)
	}
	if *output == "-" {
		if _, err := out.Write(bundle); err != nil {
			return err
		}
		return nil
	}
	if err := os.WriteFile(*output, bundle, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "exported %d containers (%d bytes) to %s\n", len(entries), len(bundle), *output)
	return nil
}

func cmdImport(args []string, out io.Writer) error {
	st, files, err := openStore(flag.NewFlagSet("uhmart import", flag.ContinueOnError), args)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("import requires at least one bundle file")
	}
	imported := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		containers, err := store.SplitBundle(data)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		for i, c := range containers {
			img, err := st.PutRaw(c)
			if err != nil {
				return fmt.Errorf("%s: container %d: %w", file, i, err)
			}
			fmt.Fprintf(out, "imported %s  %-5s  %s\n",
				hex.EncodeToString(img.SourceHash[:])[:16], img.Level(), img.Name())
			imported++
		}
	}
	fmt.Fprintf(out, "%d containers imported\n", imported)
	return nil
}
