package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubTarget speaks just enough uhmd to absorb load: it counts distinct
// sources as builds and answers runs and batches.
type stubTarget struct {
	mu      sync.Mutex
	sources map[string]bool
	runs    int64
}

func newStubTarget(t *testing.T) (*stubTarget, *httptest.Server) {
	t.Helper()
	st := &stubTarget{sources: map[string]bool{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		builds := len(st.sources)
		st.mu.Unlock()
		fmt.Fprintf(w, `{"workers":2,"stats":{"Registry":{"Builds":%d}}}`, builds)
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Source string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, `{"error":"malformed"}`, http.StatusBadRequest)
			return
		}
		st.serve(req.Source)
		fmt.Fprint(w, `{"report":{"program":"x"}}`)
	})
	mux.HandleFunc("POST /batch/run", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Items []struct{ Source string } `json:"items"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, `{"error":"malformed"}`, http.StatusBadRequest)
			return
		}
		items := make([]json.RawMessage, len(req.Items))
		for i, it := range req.Items {
			st.serve(it.Source)
			items[i] = json.RawMessage(`{"status":200,"report":{"program":"x"}}`)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"items": items, "failed": 0})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return st, ts
}

func (st *stubTarget) serve(source string) {
	st.mu.Lock()
	st.sources[source] = true
	st.runs++
	st.mu.Unlock()
}

func (st *stubTarget) distinct() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sources)
}

// TestClosedLoopReport: a short closed-loop run produces a coherent report
// — every request measured, zero errors, builds delta == distinct programs.
func TestClosedLoopReport(t *testing.T) {
	st, ts := newStubTarget(t)
	cfg := &config{
		target: ts.URL, duration: 300 * time.Millisecond,
		concurrency: 4, batch: 1, programs: 6, seed: 7, strategy: "dtb",
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" {
		t.Fatalf("mode %q", rep.Mode)
	}
	if rep.Requests == 0 || rep.Runs != rep.Requests {
		t.Fatalf("requests=%d runs=%d", rep.Requests, rep.Runs)
	}
	if rep.Errors.Total != 0 {
		t.Fatalf("errors: %+v", rep.Errors)
	}
	if int64(rep.Latency.Count) != rep.Requests {
		t.Fatalf("latency samples %d != requests %d", rep.Latency.Count, rep.Requests)
	}
	if rep.Latency.P50Ms <= 0 || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("degenerate latency summary: %+v", rep.Latency)
	}
	if !rep.Fleet.Scraped || rep.Fleet.BuildsDelta != int64(cfg.programs) {
		t.Fatalf("fleet scrape: %+v, want delta %d", rep.Fleet, cfg.programs)
	}
	if st.distinct() != cfg.programs {
		t.Fatalf("target saw %d distinct programs, want %d", st.distinct(), cfg.programs)
	}
	if rep.ThroughputReqPerSec <= 0 {
		t.Fatal("zero throughput")
	}
}

// TestBatchLoop: -batch N drives /batch/run, counting N runs per request
// and still covering every program.
func TestBatchLoop(t *testing.T) {
	st, ts := newStubTarget(t)
	cfg := &config{
		target: ts.URL, duration: 300 * time.Millisecond,
		concurrency: 2, batch: 4, programs: 8, seed: 3, strategy: "dtb",
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != rep.Requests*int64(cfg.batch) {
		t.Fatalf("runs=%d, want requests(%d) x batch(%d)", rep.Runs, rep.Requests, cfg.batch)
	}
	if st.distinct() != cfg.programs {
		t.Fatalf("target saw %d distinct programs, want %d", st.distinct(), cfg.programs)
	}
	if rep.Fleet.BuildsDelta != int64(cfg.programs) {
		t.Fatalf("builds delta %d, want %d", rep.Fleet.BuildsDelta, cfg.programs)
	}
}

// TestOpenLoop: -rate fires on a clock; completed requests are measured
// and the report tags the mode.
func TestOpenLoop(t *testing.T) {
	_, ts := newStubTarget(t)
	cfg := &config{
		target: ts.URL, duration: 400 * time.Millisecond,
		concurrency: 8, rate: 100, batch: 1, programs: 4, seed: 1, strategy: "dtb",
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("mode %q", rep.Mode)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop sent nothing")
	}
	// ~100/s over 0.4s: bounded well under the closed-loop natural rate.
	if rep.Requests > 80 {
		t.Fatalf("open loop sent %d requests at rate 100 over 400ms — clock not honoured", rep.Requests)
	}
	if rep.Errors.Total != 0 {
		t.Fatalf("errors: %+v", rep.Errors)
	}
}

// TestErrorAccounting: non-200 answers are counted by status, not hidden.
func TestErrorAccounting(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cfg := &config{
		target: ts.URL, duration: 150 * time.Millisecond,
		concurrency: 2, batch: 1, programs: 2, seed: 1, strategy: "dtb",
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors.Total != rep.Requests || rep.Requests == 0 {
		t.Fatalf("errors=%d requests=%d", rep.Errors.Total, rep.Requests)
	}
	if rep.Errors.ByStatus["503"] != rep.Requests {
		t.Fatalf("by_status: %+v", rep.Errors.ByStatus)
	}
	if rep.Runs != 0 {
		t.Fatalf("runs=%d against an all-503 target", rep.Runs)
	}
}

// TestMixParsing: mix specs validate and weight correctly.
func TestMixParsing(t *testing.T) {
	mix, err := parseMix("kernel=2,dispatch=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0] != "kernel" || mix[1] != "kernel" || mix[2] != "dispatch" {
		t.Fatalf("mix = %v", mix)
	}
	if _, err := parseMix("kernel=0"); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := parseMix("no-such-archetype"); err == nil {
		t.Fatal("unknown archetype accepted")
	}
	all, err := parseMix("")
	if err != nil || len(all) < 4 {
		t.Fatalf("default mix = %v (%v)", all, err)
	}
}

// TestProgramsDeterministic: same seed/mix/count produce byte-identical
// request bodies — load runs are reproducible.
func TestProgramsDeterministic(t *testing.T) {
	cfg := &config{programs: 6, seed: 11, strategy: "dtb", mix: "kernel=1,recursion=1"}
	a, err := buildPrograms(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildPrograms(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if string(a[i].item) != string(b[i].item) {
			t.Fatalf("program %d differs across identical configs", i)
		}
	}
	// Distinct seeds produce distinct programs.
	seen := map[string]bool{}
	for _, p := range a {
		seen[string(p.item)] = true
	}
	if len(seen) != len(a) {
		t.Fatalf("%d distinct bodies from %d programs", len(seen), len(a))
	}
}

// TestReportShape: the emitted JSON round-trips with the fields CI's jq
// assertions read.
func TestReportShape(t *testing.T) {
	_, ts := newStubTarget(t)
	cfg := &config{
		target: ts.URL, duration: 100 * time.Millisecond,
		concurrency: 1, batch: 1, programs: 2, seed: 1, strategy: "dtb",
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := writeReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"latency", "errors", "fleet", "unique_programs", "throughput_req_per_sec"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("report missing %q: %s", key, buf.String())
		}
	}
	lat := m["latency"].(map[string]any)
	for _, q := range []string{"p50_ms", "p99_ms", "p999_ms"} {
		if _, ok := lat[q]; !ok {
			t.Fatalf("latency summary missing %q", q)
		}
	}
	fleet := m["fleet"].(map[string]any)
	if _, ok := fleet["builds_delta"]; !ok {
		t.Fatal("fleet missing builds_delta")
	}
}
