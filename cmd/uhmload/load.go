package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uhm/internal/metrics"
	"uhm/internal/workload"
)

// config carries the parsed uhmload flags.
type config struct {
	target      string
	duration    time.Duration
	concurrency int
	rate        float64
	batch       int
	mix         string
	programs    int
	seed        int64
	strategy    string
	output      string
}

func registerFlags(fs *flag.FlagSet, cfg *config) {
	fs.StringVar(&cfg.target, "target", "", "base URL of the uhmd (or uhmd -router) under load, e.g. http://localhost:9000")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured load window")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop workers, or the open-loop in-flight cap")
	fs.Float64Var(&cfg.rate, "rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
	fs.IntVar(&cfg.batch, "batch", 1, "runs per request; >1 drives /batch/run instead of /v1/run")
	fs.StringVar(&cfg.mix, "mix", "", "archetype mix as name=weight pairs, e.g. kernel=2,dispatch=1 (empty = all archetypes, equal weight)")
	fs.IntVar(&cfg.programs, "programs", 32, "distinct generated programs cycled through the workload")
	fs.Int64Var(&cfg.seed, "seed", 1, "generator seed (same seed + mix + programs = same program set)")
	fs.StringVar(&cfg.strategy, "strategy", "dtb", "simulation strategy requested for every run")
	fs.StringVar(&cfg.output, "o", "", "write the JSON report here instead of stdout")
}

func (c *config) validate() error {
	if c.target == "" {
		return fmt.Errorf("-target is required")
	}
	if c.batch < 1 {
		return fmt.Errorf("-batch must be >= 1 (got %d)", c.batch)
	}
	if c.concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1 (got %d)", c.concurrency)
	}
	if c.programs < 1 {
		return fmt.Errorf("-programs must be >= 1 (got %d)", c.programs)
	}
	if c.rate < 0 {
		return fmt.Errorf("-rate must be >= 0 (got %g)", c.rate)
	}
	if _, err := parseMix(c.mix); err != nil {
		return err
	}
	return nil
}

// parseMix expands "kernel=2,dispatch=1" into a weighted archetype name
// list (the cycle order programs are generated in).  Empty selects every
// archetype at weight 1.
func parseMix(spec string) ([]string, error) {
	known := workload.ArchetypeNames()
	if spec == "" {
		return known, nil
	}
	isKnown := make(map[string]bool, len(known))
	for _, n := range known {
		isKnown[n] = true
	}
	var mix []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, found := strings.Cut(part, "=")
		weight := 1
		if found {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("-mix: bad weight in %q", part)
			}
			weight = w
		}
		if !isKnown[name] {
			return nil, fmt.Errorf("-mix: unknown archetype %q (have %s)", name, strings.Join(known, ", "))
		}
		for i := 0; i < weight; i++ {
			mix = append(mix, name)
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-mix: no archetypes selected")
	}
	return mix, nil
}

// loadReport is the uhmload JSON output.
type loadReport struct {
	Target      string  `json:"target"`
	Mode        string  `json:"mode"` // "closed" or "open"
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	BatchSize   int     `json:"batch_size"`
	Mix         string  `json:"mix"`
	Seed        int64   `json:"seed"`
	Strategy    string  `json:"strategy"`

	UniquePrograms int `json:"unique_programs"`

	Requests int64 `json:"requests"`
	Runs     int64 `json:"runs"`
	Errors   struct {
		Total    int64            `json:"total"`
		ByStatus map[string]int64 `json:"by_status,omitempty"`
		Shed     int64            `json:"shed,omitempty"` // open-loop arrivals dropped at the in-flight cap
	} `json:"errors"`

	Latency metrics.LatencySummary `json:"latency"`

	ThroughputReqPerSec  float64 `json:"throughput_req_per_sec"`
	ThroughputRunsPerSec float64 `json:"throughput_runs_per_sec"`

	Fleet struct {
		StatsBefore int64 `json:"builds_before"`
		StatsAfter  int64 `json:"builds_after"`
		BuildsDelta int64 `json:"builds_delta"`
		Scraped     bool  `json:"scraped"`
	} `json:"fleet"`
}

// loadProgram is one pre-marshaled request body (single) or batch item.
type loadProgram struct {
	item []byte // {"source":...,"name":...,"strategy":...}
}

// buildPrograms generates the distinct program set, cycling the mix, and
// pre-marshals every request body so the hot loop does zero encoding work.
func buildPrograms(cfg *config) ([]loadProgram, error) {
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	out := make([]loadProgram, cfg.programs)
	for i := range out {
		arch := mix[i%len(mix)]
		prog, err := workload.GenerateArchetype(arch, cfg.seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("generating %s program %d: %w", arch, i, err)
		}
		item, err := json.Marshal(struct {
			Source   string `json:"source"`
			Name     string `json:"name"`
			Strategy string `json:"strategy,omitempty"`
		}{Source: prog.Source, Name: prog.Name, Strategy: cfg.strategy})
		if err != nil {
			return nil, err
		}
		out[i] = loadProgram{item: item}
	}
	return out, nil
}

// buildBodies pre-assembles the wire bodies the loop will send: one per
// program for singles, or one per batch-window of the program cycle.
func buildBodies(progs []loadProgram, batch int) [][]byte {
	if batch <= 1 {
		out := make([][]byte, len(progs))
		for i, p := range progs {
			out[i] = p.item
		}
		return out
	}
	// Batch windows cover the program cycle so every program appears with
	// equal frequency regardless of batch size.
	n := len(progs)
	var out [][]byte
	for start := 0; start < n; start += 1 {
		var buf bytes.Buffer
		buf.WriteString(`{"items":[`)
		for k := 0; k < batch; k++ {
			if k > 0 {
				buf.WriteByte(',')
			}
			buf.Write(progs[(start+k)%n].item)
		}
		buf.WriteString(`]}`)
		out = append(out, buf.Bytes())
	}
	return out
}

// scrapeBuilds reads the build counter from /v1/stats, understanding both
// the single-node envelope ({"stats":{"Registry":{"Builds":N}}}) and the
// router's fleet aggregate ({"fleet":{"builds":N}}).
func scrapeBuilds(client *http.Client, target string) (int64, bool) {
	resp, err := client.Get(strings.TrimRight(target, "/") + "/v1/stats")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var probe struct {
		Fleet *struct {
			Builds int64 `json:"builds"`
		} `json:"fleet"`
		Stats *struct {
			Registry struct {
				Builds int64
			}
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, false
	}
	if probe.Fleet != nil {
		return probe.Fleet.Builds, true
	}
	if probe.Stats != nil {
		return probe.Stats.Registry.Builds, true
	}
	return 0, false
}

// runLoad drives the configured load window and assembles the report.
func runLoad(cfg *config) (*loadReport, error) {
	progs, err := buildPrograms(cfg)
	if err != nil {
		return nil, err
	}
	bodies := buildBodies(progs, cfg.batch)
	path := "/v1/run"
	if cfg.batch > 1 {
		path = "/batch/run"
	}
	url := strings.TrimRight(cfg.target, "/") + path

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: cfg.concurrency,
	}}

	buildsBefore, scrapedBefore := scrapeBuilds(client, cfg.target)

	rec := &metrics.LatencyRecorder{}
	var requests, runs, errTotal, shed atomic.Int64
	var statusMu sync.Mutex
	byStatus := map[string]int64{}

	countStatus := func(status int) {
		statusMu.Lock()
		byStatus[strconv.Itoa(status)]++
		statusMu.Unlock()
	}

	// sendOne fires one request and accounts for it.  Batch responses are
	// opened to count per-item failures; the request itself is an error
	// only on a non-200 envelope or transport failure.
	sendOne := func(next int64) {
		body := bodies[int(next)%len(bodies)]
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		elapsed := time.Since(start)
		requests.Add(1)
		if err != nil {
			errTotal.Add(1)
			countStatus(0)
			return
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		rec.Record(elapsed)
		if rerr != nil || resp.StatusCode != http.StatusOK {
			errTotal.Add(1)
			countStatus(resp.StatusCode)
			return
		}
		if cfg.batch > 1 {
			var br struct {
				Items  []json.RawMessage `json:"items"`
				Failed int64             `json:"failed"`
			}
			if err := json.Unmarshal(data, &br); err != nil {
				errTotal.Add(1)
				countStatus(resp.StatusCode)
				return
			}
			runs.Add(int64(len(br.Items)) - br.Failed)
			errTotal.Add(br.Failed)
		} else {
			runs.Add(1)
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.duration)
	var counter atomic.Int64

	if cfg.rate <= 0 {
		// Closed loop: -concurrency workers, back-to-back requests.
		var wg sync.WaitGroup
		for w := 0; w < cfg.concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					sendOne(counter.Add(1))
				}
			}()
		}
		wg.Wait()
	} else {
		// Open loop: fixed arrival rate, -concurrency as the in-flight cap;
		// arrivals beyond the cap are shed (and counted), never queued —
		// queueing arrivals would quietly turn the open loop closed.
		interval := time.Duration(float64(time.Second) / cfg.rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		sem := make(chan struct{}, cfg.concurrency)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var wg sync.WaitGroup
		for time.Now().Before(deadline) {
			<-ticker.C
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(n int64) {
					defer wg.Done()
					defer func() { <-sem }()
					sendOne(n)
				}(counter.Add(1))
			default:
				shed.Add(1)
			}
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	buildsAfter, scrapedAfter := scrapeBuilds(client, cfg.target)

	rep := &loadReport{
		Target:      cfg.target,
		Mode:        map[bool]string{true: "open", false: "closed"}[cfg.rate > 0],
		DurationSec: elapsed.Seconds(),
		Concurrency: cfg.concurrency,
		RatePerSec:  cfg.rate,
		BatchSize:   cfg.batch,
		Mix:         cfg.mix,
		Seed:        cfg.seed,
		Strategy:    cfg.strategy,

		UniquePrograms: cfg.programs,
		Requests:       requests.Load(),
		Runs:           runs.Load(),
		Latency:        rec.Summary(),
	}
	rep.Errors.Total = errTotal.Load()
	rep.Errors.Shed = shed.Load()
	statusMu.Lock()
	if len(byStatus) > 0 {
		// Keep only non-200 statuses in the error map.
		m := map[string]int64{}
		var keys []string
		for k := range byStatus {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if k != "200" {
				m[k] = byStatus[k]
			}
		}
		if len(m) > 0 {
			rep.Errors.ByStatus = m
		}
	}
	statusMu.Unlock()
	if elapsed > 0 {
		rep.ThroughputReqPerSec = float64(rep.Requests) / elapsed.Seconds()
		rep.ThroughputRunsPerSec = float64(rep.Runs) / elapsed.Seconds()
	}
	rep.Fleet.Scraped = scrapedBefore && scrapedAfter
	if rep.Fleet.Scraped {
		rep.Fleet.StatsBefore = buildsBefore
		rep.Fleet.StatsAfter = buildsAfter
		rep.Fleet.BuildsDelta = buildsAfter - buildsBefore
	}
	return rep, nil
}

func writeReport(w io.Writer, rep *loadReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
