// Command uhmload is the fleet load harness: a synthetic open- or closed-
// loop driver that generates archetype workload programs, replays them
// against a uhmd (single node or router front end) over /v1/run or
// /batch/run, and reports measured latency quantiles, throughput, error
// counts and the fleet-wide build delta as JSON.
//
// Usage:
//
//	uhmload -target http://localhost:9000 -duration 10s -concurrency 8
//	uhmload -target http://localhost:9000 -batch 16 -mix kernel=2,dispatch=1
//	uhmload -target http://localhost:9000 -rate 200 -duration 30s -o bench.json
//
// Closed loop (-rate 0, the default) keeps -concurrency requests in flight
// back to back, measuring the system at its natural throughput.  Open loop
// (-rate N) fires N requests per second regardless of completions — the
// arrival process the latency literature means when it says "p99 under
// load" — and -concurrency becomes the in-flight cap beyond which arrivals
// are counted as shed rather than queued.
//
// The build delta is scraped from /v1/stats before and after the run; both
// the single-node shape and the router's fleet aggregate are understood.
// Against a consistent-hash router, builds_delta == unique_programs is the
// fleet-wide single-build invariant CI gates on.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var cfg config
	fs := flag.NewFlagSet("uhmload", flag.ExitOnError)
	registerFlags(fs, &cfg)
	fs.Parse(os.Args[1:])
	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "uhmload:", err)
		os.Exit(2)
	}
	rep, err := runLoad(&cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uhmload:", err)
		os.Exit(1)
	}
	out := os.Stdout
	if cfg.output != "" {
		f, err := os.Create(cfg.output)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uhmload:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := writeReport(out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "uhmload:", err)
		os.Exit(1)
	}
}
