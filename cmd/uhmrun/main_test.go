package main

import (
	"strings"
	"testing"

	"uhm/internal/core"
	"uhm/internal/service"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]core.Level{
		"stack": core.LevelStack,
		"mem2":  core.LevelMem2,
		"mem3":  core.LevelMem3,
	}
	for name, want := range cases {
		got, err := parseLevel(name)
		if err != nil {
			t.Fatalf("parseLevel(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("parseLevel(%q) = %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"", "Stack", "mem4", "stack "} {
		if _, err := parseLevel(bad); err == nil {
			t.Errorf("parseLevel(%q) succeeded, want error", bad)
		}
	}
}

func TestParseDegree(t *testing.T) {
	cases := map[string]core.Degree{
		"packed":  core.DegreePacked,
		"contour": core.DegreeContour,
		"huffman": core.DegreeHuffman,
		"pair":    core.DegreePair,
	}
	for name, want := range cases {
		got, err := parseDegree(name)
		if err != nil {
			t.Fatalf("parseDegree(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("parseDegree(%q) = %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"", "Huffman", "huff"} {
		if _, err := parseDegree(bad); err == nil {
			t.Errorf("parseDegree(%q) succeeded, want error", bad)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"conventional": core.Conventional,
		"dtb":          core.WithDTB,
		"cache":        core.WithCache,
		"expanded":     core.Expanded,
		"compiled":     core.Compiled,
	}
	for name, want := range cases {
		got, err := parseStrategy(name)
		if err != nil {
			t.Fatalf("parseStrategy(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("parseStrategy(%q) = %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"", "DTB", "icache"} {
		if _, err := parseStrategy(bad); err == nil {
			t.Errorf("parseStrategy(%q) succeeded, want error", bad)
		}
	}
}

func TestBuildArtifactValidation(t *testing.T) {
	svc := service.New(service.Options{})
	if _, err := buildArtifact(svc, "fib", "prog.ml", "", 1, core.LevelStack); err == nil {
		t.Error("buildArtifact with both -workload and -file succeeded, want error")
	}
	if _, err := buildArtifact(svc, "fib", "", "dispatch", 1, core.LevelStack); err == nil {
		t.Error("buildArtifact with both -workload and -archetype succeeded, want error")
	}
	if _, err := buildArtifact(svc, "", "", "", 1, core.LevelStack); err == nil {
		t.Error("buildArtifact with no source selector succeeded, want error")
	}
	art, err := buildArtifact(svc, "fib", "", "", 1, core.LevelMem2)
	if err != nil {
		t.Fatalf("buildArtifact(fib): %v", err)
	}
	if art.Name != "fib" || art.Level != core.LevelMem2 {
		t.Errorf("buildArtifact(fib) = %q level %v", art.Name, art.Level)
	}
	// The registry path is live: the build landed in the artifact cache.
	if st := svc.Registry().Stats(); st.Builds != 1 {
		t.Errorf("Builds = %d, want 1 (artifact built through the registry)", st.Builds)
	}
}

func TestBuildArtifactArchetype(t *testing.T) {
	svc := service.New(service.Options{})
	art, err := buildArtifact(svc, "", "", "dispatch", 7, core.LevelStack)
	if err != nil {
		t.Fatalf("buildArtifact(dispatch, 7): %v", err)
	}
	if art.Name != "dispatch7" || art.Level != core.LevelStack {
		t.Errorf("buildArtifact(dispatch, 7) = %q level %v", art.Name, art.Level)
	}
	// The same archetype+seed resolves to the same content-addressed artifact:
	// the second build must be a registry hit, not a rebuild.
	if _, err := buildArtifact(svc, "", "", "dispatch", 7, core.LevelStack); err != nil {
		t.Fatal(err)
	}
	if st := svc.Registry().Stats(); st.Builds != 1 || st.Hits != 1 {
		t.Errorf("registry builds=%d hits=%d, want 1/1", st.Builds, st.Hits)
	}
	if _, err := buildArtifact(svc, "", "", "no-such-archetype", 1, core.LevelStack); err == nil {
		t.Error("buildArtifact with unknown archetype succeeded, want error")
	}
}

func TestCompareOutputs(t *testing.T) {
	mk := func(s core.Strategy, out ...int64) *core.Report {
		return &core.Report{Strategy: s, Output: out}
	}
	same := []*core.Report{
		mk(core.Conventional, 1, 2, 3),
		mk(core.WithDTB, 1, 2, 3),
		mk(core.WithCache, 1, 2, 3),
		mk(core.Expanded, 1, 2, 3),
	}
	if err := compareOutputs(same); err != nil {
		t.Errorf("compareOutputs on identical outputs: %v", err)
	}
	diverged := []*core.Report{
		mk(core.Conventional, 1, 2, 3),
		mk(core.WithDTB, 1, 9, 3),
	}
	if err := compareOutputs(diverged); err == nil {
		t.Error("compareOutputs on diverged outputs succeeded, want error")
	}
	shorter := []*core.Report{
		mk(core.Conventional, 1, 2, 3),
		mk(core.Expanded, 1, 2),
	}
	if err := compareOutputs(shorter); err == nil {
		t.Error("compareOutputs on different-length outputs succeeded, want error")
	}
}

func TestOutputDiff(t *testing.T) {
	diffs := outputDiff([]int64{1, 2, 3}, []int64{1, 9, 3, 4})
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"value 1: 2 vs 9", "value 3: <missing> vs 4", "lengths differ: 3 vs 4"} {
		if !strings.Contains(joined, want) {
			t.Errorf("outputDiff missing %q in:\n%s", want, joined)
		}
	}
	if diffs := outputDiff([]int64{5}, []int64{5}); len(diffs) != 0 {
		t.Errorf("outputDiff on equal outputs = %v, want none", diffs)
	}
}
