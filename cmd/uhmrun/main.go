// Command uhmrun compiles a MiniLang program (a built-in workload or a source
// file), simulates it on the universal host machine under a chosen
// organisation, and prints the program output together with the cost report.
//
// Usage:
//
//	uhmrun -workload fib -strategy dtb
//	uhmrun -file prog.ml -strategy conventional -level mem3 -degree pair
//	uhmrun -workload loopsum -strategy compiled
//	uhmrun -workload sieve -compare
//	uhmrun -archetype dispatch -gen-seed 7 -compare
//
// -archetype runs a generated workload instead: the named generator archetype
// (see -list-archetypes) produces the seeded, oracle-validated program
// -gen-seed selects, and the run proceeds exactly as for a source file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"

	"uhm/internal/core"
	"uhm/internal/metrics"
	"uhm/internal/service"
	"uhm/internal/workload"
)

func main() {
	workloadName := flag.String("workload", "", "built-in workload to run (see -list)")
	file := flag.String("file", "", "MiniLang source file to run")
	archetype := flag.String("archetype", "", "generator archetype to run a generated program from (see -list-archetypes)")
	genSeed := flag.Int64("gen-seed", 1, "program seed for -archetype")
	list := flag.Bool("list", false, "list the built-in workloads and exit")
	listArchetypes := flag.Bool("list-archetypes", false, "list the generator archetypes and exit")
	levelName := flag.String("level", "stack", "semantic level of the DIR: stack, mem2, mem3")
	degreeName := flag.String("degree", "huffman", "encoding degree: packed, contour, huffman, pair")
	strategyName := flag.String("strategy", "dtb", "organisation: conventional, dtb, cache, expanded, compiled")
	compare := flag.Bool("compare", false, "run every organisation and compare them")
	flag.Parse()

	if *list {
		for _, name := range core.Workloads() {
			fmt.Println(name)
		}
		return
	}
	if *listArchetypes {
		for _, a := range workload.Archetypes() {
			fmt.Printf("%-10s %s\n", a.Name, a.Description)
		}
		return
	}
	if err := run(*workloadName, *file, *archetype, *genSeed, *levelName, *degreeName, *strategyName, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "uhmrun:", err)
		os.Exit(1)
	}
}

func run(workloadName, file, archetype string, genSeed int64, levelName, degreeName, strategyName string, compare bool) error {
	level, err := parseLevel(levelName)
	if err != nil {
		return err
	}
	degree, err := parseDegree(degreeName)
	if err != nil {
		return err
	}
	// One-shot CLI runs go through the same service layer cmd/uhmd serves
	// over HTTP — content-addressed artifact registry, pooled replayers — so
	// the two paths cannot drift.
	svc := service.New(service.Options{})
	ctx := context.Background()
	art, err := buildArtifact(svc, workloadName, file, archetype, genSeed, level)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Degree = degree

	if compare {
		// CompareArtifact reports a mismatch through its error, but the
		// reports themselves are still returned; keep them so a divergence
		// can be shown as a per-strategy diff rather than a bare error
		// string.
		reports, cmpErr := svc.CompareArtifact(ctx, art, cfg)
		if len(reports) == 0 {
			if cmpErr != nil {
				return cmpErr
			}
			return fmt.Errorf("comparison produced no reports")
		}
		if err := compareOutputs(reports); err != nil {
			return err
		}
		if cmpErr != nil {
			return cmpErr
		}
		fmt.Printf("output: %v\n\n", reports[0].Output)
		tbl := metrics.NewTable("strategy comparison", "strategy", "instructions", "cycles", "cycles/instr", "hit ratio")
		for _, rep := range reports {
			hit := ""
			if rep.Strategy == core.WithDTB {
				hit = metrics.Percent(rep.Measured.HD)
			}
			if rep.Strategy == core.WithCache {
				hit = metrics.Percent(rep.Measured.HC)
			}
			tbl.AddRow(rep.Strategy.String(), fmt.Sprint(rep.Instructions),
				fmt.Sprint(rep.TotalCycles), metrics.Float(rep.PerInstruction), hit)
		}
		fmt.Print(tbl.Render())
		return nil
	}

	strategy, err := parseStrategy(strategyName)
	if err != nil {
		return err
	}
	rep, err := svc.RunArtifact(ctx, art, strategy, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("program:        %s (level %s, %s encoding)\n", art.Name, art.Level, degree)
	fmt.Printf("output:         %v\n", rep.Output)
	fmt.Printf("instructions:   %d\n", rep.Instructions)
	fmt.Printf("total cycles:   %d (%.2f per DIR instruction)\n", rep.TotalCycles, rep.PerInstruction)
	fmt.Printf("  fetch:        %d\n", rep.FetchCycles)
	fmt.Printf("  decode:       %d\n", rep.DecodeCycles)
	fmt.Printf("  translate:    %d\n", rep.TranslateCycles)
	fmt.Printf("  semantics:    %d\n", rep.SemanticCycles)
	fmt.Printf("static size:    %s (decoder tables %s)\n", metrics.Bits(rep.StaticBits), metrics.Bits(rep.CodebookBits))
	if strategy == core.WithDTB {
		fmt.Printf("DTB hit ratio:  %s (%d lookups, %d misses)\n",
			metrics.Percent(rep.Measured.HD), rep.DTBStats.Lookups, rep.DTBStats.Misses)
	}
	if strategy == core.WithCache {
		fmt.Printf("cache hit rate: %s\n", metrics.Percent(rep.Measured.HC))
	}
	if strategy == core.Compiled {
		fmt.Printf("compiled code:  %d words resident in level 1 (all binding done at compile time)\n",
			rep.CompiledWords)
	}
	return nil
}

// compareOutputs enforces the paper's equivalence invariant on a set of
// comparison reports: every strategy must have produced the identical output
// sequence.  On divergence it prints a per-strategy diff against the first
// report and returns an error (so the command exits nonzero).
func compareOutputs(reports []*core.Report) error {
	base := reports[0]
	diverged := false
	for _, rep := range reports[1:] {
		if slices.Equal(rep.Output, base.Output) {
			continue
		}
		if !diverged {
			diverged = true
			fmt.Fprintf(os.Stderr, "output divergence across strategies (the paper's equivalence invariant is violated):\n")
			fmt.Fprintf(os.Stderr, "  %-14s %v\n", base.Strategy.String()+":", base.Output)
		}
		fmt.Fprintf(os.Stderr, "  %-14s %v\n", rep.Strategy.String()+":", rep.Output)
		for _, d := range outputDiff(base.Output, rep.Output) {
			fmt.Fprintf(os.Stderr, "    %s\n", d)
		}
	}
	if diverged {
		return fmt.Errorf("strategies disagree on program output")
	}
	return nil
}

// outputDiff describes the positions at which two output sequences differ.
func outputDiff(a, b []int64) []string {
	var diffs []string
	n := max(len(a), len(b))
	for i := 0; i < n && len(diffs) < 8; i++ {
		switch {
		case i >= len(a):
			diffs = append(diffs, fmt.Sprintf("value %d: <missing> vs %d", i, b[i]))
		case i >= len(b):
			diffs = append(diffs, fmt.Sprintf("value %d: %d vs <missing>", i, a[i]))
		case a[i] != b[i]:
			diffs = append(diffs, fmt.Sprintf("value %d: %d vs %d", i, a[i], b[i]))
		}
	}
	if len(a) != len(b) {
		diffs = append(diffs, fmt.Sprintf("lengths differ: %d vs %d values", len(a), len(b)))
	}
	return diffs
}

func buildArtifact(svc *service.Service, workloadName, file, archetype string, genSeed int64, level core.Level) (*core.Artifact, error) {
	selected := 0
	for _, s := range []string{workloadName, file, archetype} {
		if s != "" {
			selected++
		}
	}
	if selected > 1 {
		return nil, fmt.Errorf("specify only one of -workload, -file, -archetype")
	}
	switch {
	case workloadName != "":
		return svc.ArtifactWorkload(workloadName, level)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return svc.ArtifactSource(file, string(src), level)
	case archetype != "":
		p, err := workload.GenerateArchetype(archetype, genSeed)
		if err != nil {
			return nil, err
		}
		// Generated programs ride the same content-addressed source path a
		// -file run uses, so the registry and server code paths are shared.
		return svc.ArtifactSource(p.Name, p.Source, level)
	default:
		return nil, fmt.Errorf("specify -workload, -file or -archetype (use -list / -list-archetypes)")
	}
}

// The flag parsers delegate to core, the single source of truth shared with
// uhmasm and the uhmd server.
func parseLevel(name string) (core.Level, error)       { return core.ParseLevel(name) }
func parseDegree(name string) (core.Degree, error)     { return core.ParseDegree(name) }
func parseStrategy(name string) (core.Strategy, error) { return core.ParseStrategy(name) }
