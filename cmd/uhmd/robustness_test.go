package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"uhm/internal/faultinject"
	"uhm/internal/service"
)

// newTestServerFromHandler serves an already-configured handler (tests that
// tweak server fields like requestTimeout before serving).
func newTestServerFromHandler(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// activateFaults installs a fault plan for the duration of the test.
func activateFaults(t *testing.T, seed int64, spec string) {
	t.Helper()
	plan, err := faultinject.ParseSpec(seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Activate(plan))
}

// TestRequestIDEchoed: a client-supplied X-Request-ID comes back on the
// response header and inside the JSON error body.
func TestRequestIDEchoed(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(`{"workload":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("X-Request-ID header = %q, want the echoed client ID", got)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "trace-me-42" {
		t.Fatalf("error body request_id = %q, want trace-me-42 (body error: %s)", e.RequestID, e.Error)
	}
}

// TestRequestIDGenerated: with no client header, the server mints an ID and
// attaches it to both the header and the error body.
func TestRequestIDGenerated(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"workload":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID generated")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != id {
		t.Fatalf("error body request_id = %q, header = %q; want them equal", e.RequestID, id)
	}
}

// TestOverloadReturns503WithRetryAfter saturates a one-worker server (the
// lone slot is wedged by a delay fault) and asserts the next request is shed
// within the queue timeout as a structured 503 carrying Retry-After.
func TestOverloadReturns503WithRetryAfter(t *testing.T) {
	activateFaults(t, 1, "service/run:p=1,count=1,mode=delay,delay=1500ms")
	ts, svc := newTestServer(t, service.Options{
		Workers:      1,
		QueueTimeout: 200 * time.Millisecond,
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Wedges the only slot for the delay duration; its own outcome is
		// irrelevant here.
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"workload":"fib"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond) // let the wedger take the slot

	start := time.Now()
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(`{"workload":"fib"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "shed-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waited := time.Since(start)
	wg.Wait()

	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	retryAfter := resp.Header.Get("Retry-After")
	if retryAfter == "" {
		t.Fatal("503 without a Retry-After header")
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", retryAfter)
	}
	// Shed must happen promptly — around the queue timeout, nowhere near the
	// wedged request's duration.
	if waited > time.Second {
		t.Fatalf("shed took %s, want roughly the 200ms queue timeout", waited)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "shed-me" {
		t.Fatalf("503 body request_id = %q, want shed-me", e.RequestID)
	}
	if st := svc.Stats(); st.Requests.Overloads != 1 {
		t.Fatalf("Overloads = %d, want 1", st.Requests.Overloads)
	}
}

// TestRunPanicIsolatedAndQuarantined: an injected run panic answers as a
// structured 500 (with a request ID), quarantines the artifact so the retry
// is a deterministic 422, and leaves the server fully alive.
func TestRunPanicIsolatedAndQuarantined(t *testing.T) {
	activateFaults(t, 1, "service/run:p=1,count=1,mode=panic")
	ts, svc := newTestServer(t, service.Options{})

	status, data := postJSON(t, ts.URL+"/v1/run", `{"workload":"sieve"}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking run answered %d, want 500: %s", status, data)
	}
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID == "" {
		t.Fatalf("500 body carries no request_id: %s", data)
	}

	// The poisoned artifact is refused deterministically until an operator
	// intervenes; the fault has burnt its count, so this is the quarantine
	// answering, not a second panic.
	status, data = postJSON(t, ts.URL+"/v1/run", `{"workload":"sieve"}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined retry answered %d, want 422: %s", status, data)
	}
	if !strings.Contains(string(data), "quarantined") {
		t.Fatalf("retry error does not mention quarantine: %s", data)
	}

	st := svc.Stats()
	if st.Requests.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Requests.Panics)
	}
	if st.Registry.Quarantines != 1 || st.Registry.Quarantined != 1 {
		t.Fatalf("registry quarantine books = %+v, want exactly one", st.Registry)
	}
	if st.Pool.Leased != 0 {
		t.Fatalf("replayer leaked across the panic: %+v", st.Pool)
	}

	// Other programs are untouched, and the listener survived.
	if status, data := postJSON(t, ts.URL+"/v1/run", `{"workload":"fib"}`); status != http.StatusOK {
		t.Fatalf("unrelated program answered %d after the panic: %s", status, data)
	}
}

// TestDecodeFaultIsBadRequest: an injected decode failure surfaces as a
// normal 400, exercising the uhmd/decode site end to end.
func TestDecodeFaultIsBadRequest(t *testing.T) {
	activateFaults(t, 1, "uhmd/decode:p=1,count=1")
	ts, _ := newTestServer(t, service.Options{})
	status, data := postJSON(t, ts.URL+"/v1/run", `{"workload":"fib"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", status, data)
	}
	if !strings.Contains(string(data), "malformed request body") {
		t.Fatalf("unexpected error body: %s", data)
	}
	// The fault's count is spent; the same request now succeeds.
	if status, data := postJSON(t, ts.URL+"/v1/run", `{"workload":"fib"}`); status != http.StatusOK {
		t.Fatalf("retry status %d: %s", status, data)
	}
}

// TestRequestTimeoutCancelsWork: a per-request deadline propagates into the
// service and cancels a long-running request as a 503.  An injected delay
// wedges the first strategy of a comparison past the deadline, so the
// between-strategy context check — the cancellation point of the compare
// path — must fire deterministically.
func TestRequestTimeoutCancelsWork(t *testing.T) {
	activateFaults(t, 1, "service/run:p=1,count=1,mode=delay,delay=300ms")
	svc := service.New(service.Options{})
	h := newServer(svc)
	h.requestTimeout = 50 * time.Millisecond
	ts := newTestServerFromHandler(t, h)

	status, data := postJSON(t, ts.URL+"/v1/compare", `{"workload":"fib"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503: %s", status, data)
	}
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.RequestID == "" {
		t.Fatalf("timed-out request body lacks a request_id: %s", data)
	}
}
