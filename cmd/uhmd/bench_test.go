package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uhm/internal/service"
)

// benchServer builds a warm in-process server: the fib artifact is built,
// its replayer pooled, and the response-buffer pool filled, so the
// benchmarks below measure the steady-state handler path.
func benchServer(b *testing.B) *server {
	b.Helper()
	s := newServer(service.New(service.Options{}))
	warm := []byte(`{"workload":"fib","strategy":"dtb"}`)
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(warm))
		s.mux.ServeHTTP(nullResponseWriter{h: make(http.Header)}, req)
	}
	return s
}

// BenchmarkHTTPServeRun is the warm single-request HTTP baseline: one
// decode, one admission, one pooled run, one pooled response encode per op.
func BenchmarkHTTPServeRun(b *testing.B) {
	s := benchServer(b)
	body := []byte(`{"workload":"fib","strategy":"dtb"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
		s.mux.ServeHTTP(nullResponseWriter{h: make(http.Header)}, req)
	}
}

// BenchmarkHTTPServeBatch measures the same warm run through /batch/run at
// batch size 16; ns/op is per RUN (b.N counts runs, not envelopes), so this
// number against BenchmarkHTTPServeRun is the measured HTTP-layer
// amortisation of batching.
func BenchmarkHTTPServeBatch(b *testing.B) {
	s := benchServer(b)
	const batchSize = 16
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i < batchSize; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"workload":"fib","strategy":"dtb"}`)
	}
	sb.WriteString(`]}`)
	body := []byte(sb.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		req := httptest.NewRequest(http.MethodPost, "/batch/run", bytes.NewReader(body))
		s.mux.ServeHTTP(nullResponseWriter{h: make(http.Header)}, req)
	}
}
