package main

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"uhm/internal/core"
	"uhm/internal/faultinject"
	"uhm/internal/service"
	"uhm/internal/workload/gen"
)

// maxRequestBytes bounds a request body; submitted programs are source text,
// so a megabyte is generous.
const maxRequestBytes = 1 << 20

// maxBatchRequestBytes bounds a batch envelope (many programs per body), and
// maxBatchItems bounds how many runs one admission slot may carry.
const (
	maxBatchRequestBytes = 8 << 20
	maxBatchItems        = 256
)

// server wires the HTTP API to one shared service.Service.  Every handler
// propagates the request context into the service and the engine: client
// disconnects and server shutdown cancel slot admission, engine grid
// dispatch, and the between-strategy checks of a comparison.  An individual
// replay is not interruptible mid-run — it is bounded instead, by the
// server-side max_instructions cap enforced in validateRun.
//
// ServeHTTP wraps every handler in the robustness envelope: a request ID
// (accepted from X-Request-ID or generated) that tags the access log line and
// every error response, an optional per-request deadline, and a last-resort
// panic backstop.  Run-path panics are normally recovered a layer down, in
// service.Service, which also quarantines the offending artifact; the
// backstop here only catches handler bugs, so no panic ever kills the
// listener.
type server struct {
	svc    *service.Service
	engine core.Engine
	mux    *http.ServeMux
	// requestTimeout, when positive, bounds each request's context.
	requestTimeout time.Duration
}

func newServer(svc *service.Service) *server {
	s := &server{svc: svc, engine: svc.Engine()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /batch/run", s.handleBatchRun)
	mux.HandleFunc("POST /batch/compare", s.handleBatchCompare)
	mux.HandleFunc("POST /v1/conformance", s.handleConformance)
	mux.HandleFunc("POST /v1/experiments", s.handleExperiment)
	s.mux = mux
	return s
}

// requestIDKey carries the request's ID in its context.
type requestIDKey struct{}

// requestIDFrom returns the ID ServeHTTP attached to the request context, or
// "" for a context that never passed through the envelope (tests constructing
// bare requests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID mints a 16-hex-digit random ID for requests that arrive
// without an X-Request-ID header.
func newRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// The process rand source failing is unheard of; fall back to a
		// monotone-ish stamp rather than refuse the request.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the status and whether a body write started, so the
// access log can report what was sent and the panic backstop knows whether a
// structured error response is still possible.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	ctx := context.WithValue(r.Context(), requestIDKey{}, id)
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()
	}
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			// Last-resort isolation: run-path panics are recovered (and the
			// artifact quarantined) inside service.Service, so anything
			// reaching here is a handler bug.  Answer structurally if the
			// response has not started, and keep the listener alive either way.
			log.Printf("uhmd: panic serving %s %s id=%s: %v", r.Method, r.URL.Path, id, v)
			if !sw.wrote {
				writeError(sw, r, http.StatusInternalServerError,
					fmt.Errorf("internal error: %v", v))
			}
		}
		log.Printf("uhmd: %s %s -> %d (%s) id=%s",
			r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond), id)
	}()
	s.mux.ServeHTTP(sw, r)
}

// jsonBuf pairs a response buffer with a json.Encoder bound to it, so the
// warm path reuses both instead of allocating an encoder (and growing a fresh
// buffer) per response.  Encoding into the buffer first also yields an exact
// Content-Length, sparing the chunked-transfer framing on every response.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	jb.enc.SetIndent("", "  ")
	return jb
}}

// jsonBufMaxRecycle caps the buffer capacity worth keeping: a huge batch
// response should not pin its peak allocation in the pool forever.
const jsonBufMaxRecycle = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		// The wire types are plain data; encoding them cannot fail.  Answer
		// something structured anyway rather than an empty body.
		jsonBufPool.Put(jb)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(jb.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(jb.buf.Bytes())
	if jb.buf.Cap() <= jsonBufMaxRecycle {
		jsonBufPool.Put(jb)
	}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	var overload *service.OverloadError
	if errors.As(err, &overload) {
		w.Header().Set("Retry-After", strconv.Itoa(int(overload.RetryAfter/time.Second)))
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), RequestID: requestIDFrom(r.Context())})
}

// decodeBody parses the JSON request body strictly: unknown fields are
// rejected so a misspelled parameter fails loudly instead of silently
// selecting a default.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return decodeBodyLimit(w, r, v, maxRequestBytes)
}

func decodeBodyLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	if ferr := faultinject.Fire(faultinject.SiteDecode); ferr != nil {
		return fmt.Errorf("malformed request body: %w", ferr)
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("malformed request body: %w", err)
	}
	return nil
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workers int           `json:"workers"`
		Stats   service.Stats `json:"stats"`
	}{Workers: s.svc.Workers(), Stats: s.svc.Stats()})
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"workloads": core.Workloads()})
}

// program is a validated runRequest: which program, at which point of the
// simulation space.  Validation failures are the client's request shape
// (400); resolving the program itself — build, parse — happens later, under
// a service request slot, and fails as 422.
type program struct {
	name     string
	level    core.Level
	cfg      core.Config
	workload string // built-in, when non-empty
	source   string // submitted text, otherwise
}

func validateRun(req *runRequest) (*program, error) {
	level, err := parseLevel(req.Level)
	if err != nil {
		return nil, err
	}
	degree, err := parseDegree(req.Degree)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Degree = degree
	// A replay is not interruptible mid-run (the loop is the 0-alloc hot
	// path); what bounds how long a request can hold a worker slot is the
	// instruction budget, so the server refuses budgets above its own
	// default rather than letting a client wedge a slot arbitrarily long.
	if req.MaxInstructions < 0 {
		return nil, errors.New("max_instructions must be non-negative")
	}
	if req.MaxInstructions > cfg.MaxInstructions {
		return nil, fmt.Errorf("max_instructions above the server bound %d", cfg.MaxInstructions)
	}
	cfg.MaxInstructions = req.MaxInstructions // 0 selects the default

	p := &program{level: level, cfg: cfg}
	switch {
	case req.Workload != "" && req.Source != "":
		return nil, errors.New("specify either workload or source, not both")
	case req.Workload != "":
		p.name, p.workload = req.Workload, req.Workload
	case req.Source != "":
		p.name = req.Name
		if p.name == "" {
			p.name = "submitted"
		}
		p.source = req.Source
	default:
		return nil, errors.New("specify workload or source")
	}
	return p, nil
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	p, err := validateRun(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	// Build and run both happen inside the service's request slot, so the
	// -workers bound covers compiles of submitted source, not just replays.
	var rep *core.Report
	if p.workload != "" {
		rep, err = s.svc.RunWorkload(r.Context(), p.workload, p.level, strategy, p.cfg)
	} else {
		rep, err = s.svc.RunSource(r.Context(), p.name, p.source, p.level, strategy, p.cfg)
	}
	if err != nil {
		writeError(w, r, statusFor(r, err), err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{Report: reportToJSON(p.name, p.level, rep)})
}

func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.Strategy != "" {
		writeError(w, r, http.StatusBadRequest, errors.New("compare runs every strategy; drop the strategy field"))
		return
	}
	p, err := validateRun(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	var reports []*core.Report
	var cmpErr error
	if p.workload != "" {
		reports, cmpErr = s.svc.CompareWorkload(r.Context(), p.workload, p.level, p.cfg)
	} else {
		reports, cmpErr = s.svc.CompareSource(r.Context(), p.name, p.source, p.level, p.cfg)
	}
	if cmpErr != nil && len(reports) == 0 {
		writeError(w, r, statusFor(r, cmpErr), cmpErr)
		return
	}
	resp := compareResponse{Agree: cmpErr == nil}
	if len(reports) > 0 {
		resp.Output = reports[0].Output
	}
	if cmpErr != nil {
		// The paper's equivalence invariant failed: report the divergence
		// with the per-strategy evidence attached.
		resp.Error = cmpErr.Error()
	}
	for _, rep := range reports {
		resp.Reports = append(resp.Reports, reportToJSON(p.name, p.level, rep))
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeBatch parses and bounds a batch envelope: empty and oversized
// batches are whole-request errors (400), everything past that is per-item.
func (s *server) decodeBatch(w http.ResponseWriter, r *http.Request) (*batchRequest, error) {
	var req batchRequest
	if err := decodeBodyLimit(w, r, &req, maxBatchRequestBytes); err != nil {
		return nil, err
	}
	if len(req.Items) == 0 {
		return nil, errors.New("batch requires at least one item")
	}
	if len(req.Items) > maxBatchItems {
		return nil, fmt.Errorf("batch carries %d items, above the server bound %d",
			len(req.Items), maxBatchItems)
	}
	return &req, nil
}

// handleBatchRun is /v1/run amortised: the envelope is decoded once, admitted
// once (one request slot for the whole batch), and answered in one response
// write.  Items fail individually with the status a standalone request would
// have received; only admission failure (overload, cancellation) fails the
// envelope itself.
func (s *server) handleBatchRun(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeBatch(w, r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	items := make([]batchRunItem, len(req.Items))
	err = s.svc.Batch(r.Context(), func(ctx context.Context, b *service.BatchRunner) error {
		for i := range req.Items {
			items[i] = s.runBatchItem(ctx, r, b, &req.Items[i])
		}
		return nil
	})
	if err != nil {
		writeError(w, r, statusFor(r, err), err)
		return
	}
	resp := batchRunResponse{Items: items}
	for i := range items {
		if items[i].Status != http.StatusOK {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// runBatchItem runs one batch item under the already-held batch slot and
// folds the outcome into its per-item wire form.
func (s *server) runBatchItem(ctx context.Context, r *http.Request, b *service.BatchRunner, req *runRequest) batchRunItem {
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		return batchRunItem{Status: http.StatusBadRequest, Error: err.Error()}
	}
	p, err := validateRun(req)
	if err != nil {
		return batchRunItem{Status: http.StatusBadRequest, Error: err.Error()}
	}
	var rep *core.Report
	if p.workload != "" {
		rep, err = b.RunWorkload(ctx, p.workload, p.level, strategy, p.cfg)
	} else {
		rep, err = b.RunSource(ctx, p.name, p.source, p.level, strategy, p.cfg)
	}
	if err != nil {
		return batchRunItem{Status: statusFor(r, err), Error: err.Error()}
	}
	rj := reportToJSON(p.name, p.level, rep)
	return batchRunItem{Status: http.StatusOK, Report: &rj}
}

// handleBatchCompare is /v1/compare amortised the same way.
func (s *server) handleBatchCompare(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeBatch(w, r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	items := make([]batchCompareItem, len(req.Items))
	err = s.svc.Batch(r.Context(), func(ctx context.Context, b *service.BatchRunner) error {
		for i := range req.Items {
			items[i] = s.compareBatchItem(ctx, r, b, &req.Items[i])
		}
		return nil
	})
	if err != nil {
		writeError(w, r, statusFor(r, err), err)
		return
	}
	resp := batchCompareResponse{Items: items}
	for i := range items {
		if items[i].Status != http.StatusOK {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// compareBatchItem compares one batch item under the already-held batch slot.
func (s *server) compareBatchItem(ctx context.Context, r *http.Request, b *service.BatchRunner, req *runRequest) batchCompareItem {
	if req.Strategy != "" {
		return batchCompareItem{Status: http.StatusBadRequest,
			Error: "compare runs every strategy; drop the strategy field"}
	}
	p, err := validateRun(req)
	if err != nil {
		return batchCompareItem{Status: http.StatusBadRequest, Error: err.Error()}
	}
	var reports []*core.Report
	var cmpErr error
	if p.workload != "" {
		reports, cmpErr = b.CompareWorkload(ctx, p.workload, p.level, p.cfg)
	} else {
		reports, cmpErr = b.CompareSource(ctx, p.name, p.source, p.level, p.cfg)
	}
	if cmpErr != nil && len(reports) == 0 {
		return batchCompareItem{Status: statusFor(r, cmpErr), Error: cmpErr.Error()}
	}
	item := batchCompareItem{Status: http.StatusOK, Agree: cmpErr == nil}
	if len(reports) > 0 {
		item.Output = reports[0].Output
	}
	if cmpErr != nil {
		item.Error = cmpErr.Error()
	}
	for _, rep := range reports {
		item.Reports = append(item.Reports, reportToJSON(p.name, p.level, rep))
	}
	return item
}

func (s *server) handleConformance(w http.ResponseWriter, r *http.Request) {
	var req conformanceRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	name, src := req.Name, req.Source
	switch {
	case req.Source != "" && req.Seed != nil:
		writeError(w, r, http.StatusBadRequest, errors.New("specify either source or seed, not both"))
		return
	case req.Seed != nil:
		p, err := gen.Generate(*req.Seed)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		name, src = p.Name, p.Source
	case req.Source != "":
		if name == "" {
			name = "submitted"
		}
	default:
		writeError(w, r, http.StatusBadRequest, errors.New("specify source or seed"))
		return
	}
	divs, err := s.svc.Conformance(r.Context(), name, src, core.DefaultConfig())
	if err != nil {
		writeError(w, r, statusFor(r, err), err)
		return
	}
	resp := conformanceResponse{Name: name, Conforms: len(divs) == 0}
	for _, d := range divs {
		resp.Divergences = append(resp.Divergences, d.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req experimentRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	// An experiment fans out to the engine's full worker width, so it is
	// admitted exclusively — holding every request slot — which keeps total
	// simulation concurrency exactly at the -workers bound.  The sweep grows
	// registry artifacts outside the per-request accounting path, so the
	// byte budget is re-synced afterwards.
	var text string
	err := s.svc.AdmitExclusive(r.Context(), func(context.Context) error {
		var err error
		text, err = s.runExperiment(r, req.Name, req.Workload)
		s.svc.Registry().SyncAll()
		return err
	})
	if err != nil {
		status := statusFor(r, err)
		if errors.Is(err, errUnknownExperiment) {
			status = http.StatusBadRequest
		}
		writeError(w, r, status, err)
		return
	}
	writeJSON(w, http.StatusOK, experimentResponse{Name: req.Name, Text: text})
}

var errUnknownExperiment = errors.New("unknown experiment")

// runExperiment renders one named experiment through the registry-backed
// engine — the same sweep cmd/uhmbench runs, sharing the server's artifact
// cache.
func (s *server) runExperiment(r *http.Request, name, workloadName string) (string, error) {
	ctx := r.Context()
	cfg := core.DefaultConfig()
	var workloads []string
	if workloadName != "" {
		workloads = []string{workloadName}
	}
	switch name {
	case "table1":
		return core.Table1Report(), nil
	case "table2":
		t, err := s.engine.Table2(ctx)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "table3":
		t, err := s.engine.Table3(ctx)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "figure1":
		rows, err := s.engine.Figure1(ctx, workloads, cfg)
		if err != nil {
			return "", err
		}
		return core.RenderFigure1(rows), nil
	case "figure2":
		org, rows, err := s.engine.Figure2(ctx, workloadName, cfg)
		if err != nil {
			return "", err
		}
		return core.RenderFigure2(org, rows), nil
	case "figure3":
		act, err := s.engine.Figure3(ctx, workloadName, cfg)
		if err != nil {
			return "", err
		}
		return core.RenderFigure3(act), nil
	case "figure4":
		stats, err := s.engine.Figure4(ctx, workloadName, cfg)
		if err != nil {
			return "", err
		}
		return core.RenderFigure4(stats), nil
	case "empirical":
		rows, err := s.engine.Empirical(ctx, workloads, cfg)
		if err != nil {
			return "", err
		}
		return core.RenderEmpirical(rows), nil
	case "compaction":
		rows, err := s.engine.Compaction(ctx, workloads, core.LevelStack)
		if err != nil {
			return "", err
		}
		return core.RenderCompaction(rows), nil
	default:
		return "", fmt.Errorf("%w %q", errUnknownExperiment, name)
	}
}

// statusFor maps an error to an HTTP status.  The typed service errors come
// first: an overload is 503 (writeError adds the Retry-After header), an
// isolated run panic is 500, a quarantined artifact is 422 (the program is
// poisoned until an operator intervenes, so retrying it is futile).  After
// those, cancellation — whether observed on the request's own context or
// surfaced as a context error from the service — is the client's doing (or
// server shutdown), and everything else is an unprocessable program or a
// simulator failure.
func statusFor(r *http.Request, err error) int {
	var overload *service.OverloadError
	var panicked *service.PanicError
	var quarantined *service.QuarantineError
	switch {
	case errors.As(err, &overload):
		return http.StatusServiceUnavailable
	case errors.As(err, &panicked):
		return http.StatusInternalServerError
	case errors.As(err, &quarantined):
		return http.StatusUnprocessableEntity
	case r.Context().Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}
