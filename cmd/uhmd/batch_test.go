package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"uhm/internal/service"
)

// TestBatchRunEndpoint: many runs, one envelope — per-item reports in
// request order, one build per unique program, one admission for the batch.
func TestBatchRunEndpoint(t *testing.T) {
	ts, svc := newTestServer(t, service.Options{})
	body := `{"items":[
		{"workload":"fib","strategy":"dtb"},
		{"workload":"sieve","strategy":"dtb"},
		{"workload":"fib","strategy":"compiled"},
		{"workload":"fib","strategy":"dtb"}
	]}`
	status, data := postJSON(t, ts.URL+"/batch/run", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var resp batchRunResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 || resp.Failed != 0 {
		t.Fatalf("items = %d failed = %d, want 4 / 0", len(resp.Items), resp.Failed)
	}
	for i, item := range resp.Items {
		if item.Status != http.StatusOK || item.Report == nil {
			t.Fatalf("item %d = %+v, want 200 with a report", i, item)
		}
	}
	if resp.Items[0].Report.Program != "fib" || resp.Items[1].Report.Program != "sieve" {
		t.Fatalf("batch items answered out of order: %s, %s",
			resp.Items[0].Report.Program, resp.Items[1].Report.Program)
	}
	if !slices.Equal(resp.Items[0].Report.Output, resp.Items[2].Report.Output) ||
		!slices.Equal(resp.Items[0].Report.Output, resp.Items[3].Report.Output) {
		t.Fatal("same program diverged across batch items")
	}
	st := svc.Stats()
	if st.Registry.Builds != 2 {
		t.Fatalf("batch built %d artifacts, want 2 (fib, sieve)", st.Registry.Builds)
	}
}

// TestBatchRunPartialFailure: a bad item answers its own status; siblings
// and the envelope succeed.  This is the batch contract the router's
// splitter and uhmload both rely on.
func TestBatchRunPartialFailure(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	body := `{"items":[
		{"workload":"fib"},
		{"workload":"no-such-workload"},
		{"source":"not minilang"},
		{"workload":"fib","strategy":"quantum"},
		{"workload":"sieve"}
	]}`
	status, data := postJSON(t, ts.URL+"/batch/run", body)
	if status != http.StatusOK {
		t.Fatalf("envelope status %d, want 200: %s", status, data)
	}
	var resp batchRunResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	want := []int{200, 422, 422, 400, 200}
	if len(resp.Items) != len(want) {
		t.Fatalf("items = %d, want %d", len(resp.Items), len(want))
	}
	for i, item := range resp.Items {
		if item.Status != want[i] {
			t.Fatalf("item %d status = %d (%s), want %d", i, item.Status, item.Error, want[i])
		}
		if (item.Status == http.StatusOK) != (item.Report != nil) {
			t.Fatalf("item %d: report presence does not match status %d", i, item.Status)
		}
		if item.Status != http.StatusOK && item.Error == "" {
			t.Fatalf("item %d failed without an error message", i)
		}
	}
	if resp.Failed != 3 {
		t.Fatalf("failed = %d, want 3", resp.Failed)
	}
}

// TestBatchCompareEndpoint: compare items carry the full per-strategy report
// set and the equivalence verdict; a per-item strategy is refused per item.
func TestBatchCompareEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	body := `{"items":[
		{"workload":"fib"},
		{"workload":"fib","strategy":"dtb"}
	]}`
	status, data := postJSON(t, ts.URL+"/batch/compare", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var resp batchCompareResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 2 || resp.Failed != 1 {
		t.Fatalf("items = %d failed = %d, want 2 / 1", len(resp.Items), resp.Failed)
	}
	good := resp.Items[0]
	if good.Status != http.StatusOK || !good.Agree || len(good.Reports) != 5 {
		t.Fatalf("compare item = %+v, want 200, agree, 5 reports", good)
	}
	for _, rep := range good.Reports {
		if !slices.Equal(rep.Output, good.Output) {
			t.Fatalf("%s output %v, want %v", rep.Strategy, rep.Output, good.Output)
		}
	}
	if bad := resp.Items[1]; bad.Status != http.StatusBadRequest ||
		!strings.Contains(bad.Error, "strategy") {
		t.Fatalf("strategy-carrying compare item = %+v, want per-item 400", bad)	}
}

// TestBatchEnvelopeValidation: empty and oversized envelopes are
// whole-request errors, not per-item ones.
func TestBatchEnvelopeValidation(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	status, data := postJSON(t, ts.URL+"/batch/run", `{"items":[]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", status, data)
	}
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"workload":"fib"}`)
	}
	sb.WriteString(`]}`)
	status, data = postJSON(t, ts.URL+"/batch/run", sb.String())
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d: %s", status, data)
	}
	if !bytes.Contains(data, []byte("above the server bound")) {
		t.Fatalf("oversized batch error does not name the bound: %s", data)
	}
}

// nullResponseWriter discards the response; the alloc pin must measure the
// handler path, not a recorder's buffer growth.
type nullResponseWriter struct{ h http.Header }

func (w nullResponseWriter) Header() http.Header        { return w.h }
func (w nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nullResponseWriter) WriteHeader(int)            {}

// TestWarmRunHandlerAllocs pins the per-request allocation overhead of the
// warm single-run handler path (decode, validate, pooled service run, pooled
// response encode).  The service layer itself holds ~7 allocs/op at steady
// state; the handler envelope on top of it must stay bounded too, or the
// batch path would be the only cheap one.  The bound has headroom over the
// measured value (see the log line) but catches regressions that reintroduce
// a per-response encoder or buffer.
func TestWarmRunHandlerAllocs(t *testing.T) {
	svc := service.New(service.Options{})
	s := newServer(svc)
	body := []byte(`{"workload":"fib","strategy":"dtb"}`)

	serve := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
		w := nullResponseWriter{h: make(http.Header)}
		s.mux.ServeHTTP(w, req)
		return 0
	}
	// Warm: build the artifact, record the trace, pool the replayer, and
	// fill the encoder pool.
	for i := 0; i < 5; i++ {
		serve()
	}
	allocs := testing.AllocsPerRun(200, func() { serve() })
	t.Logf("warm /v1/run handler path: %.1f allocs/op", allocs)
	const bound = 45
	if allocs > bound {
		t.Fatalf("warm run handler path costs %.1f allocs/op, above the pinned bound %d", allocs, bound)
	}
}

// TestBatchAmortisesAllocs: per-run allocations through /batch/run at batch
// size 16 must come in under the single-request handler path — the measured
// form of the batch amortisation claim at the API boundary.
func TestBatchAmortisesAllocs(t *testing.T) {
	svc := service.New(service.Options{})
	s := newServer(svc)
	single := []byte(`{"workload":"fib","strategy":"dtb"}`)
	const batchN = 16
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i < batchN; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"workload":"fib","strategy":"dtb"}`)
	}
	sb.WriteString(`]}`)
	batch := []byte(sb.String())

	serve := func(path string, body []byte) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		w := nullResponseWriter{h: make(http.Header)}
		s.mux.ServeHTTP(w, req)
	}
	for i := 0; i < 5; i++ {
		serve("/v1/run", single)
		serve("/batch/run", batch)
	}
	singleAllocs := testing.AllocsPerRun(100, func() { serve("/v1/run", single) })
	batchAllocs := testing.AllocsPerRun(100, func() { serve("/batch/run", batch) })
	perRun := batchAllocs / batchN
	t.Logf("single = %.1f allocs/req, batch(%d) = %.1f allocs/req -> %.2f allocs/run",
		singleAllocs, batchN, batchAllocs, perRun)
	if perRun >= singleAllocs {
		t.Fatalf("batch path does not amortise: %.2f allocs/run vs %.1f single", perRun, singleAllocs)
	}
}

// TestWriteJSONPoolRecycle: writeJSON answers identical bytes when the
// buffer comes from the pool warm, and sets an exact Content-Length.
func TestWriteJSONPoolRecycle(t *testing.T) {
	var first, second *httptest.ResponseRecorder
	for i, rec := range []**httptest.ResponseRecorder{&first, &second} {
		*rec = httptest.NewRecorder()
		writeJSON(*rec, http.StatusOK, map[string]any{"seq": "same", "i": 1})
		_ = i
	}
	if first.Body.String() != second.Body.String() {
		t.Fatalf("pooled encoder changed the wire bytes:\n%q\n%q", first.Body, second.Body)
	}
	if cl := second.Header().Get("Content-Length"); cl != fmt.Sprint(second.Body.Len()) {
		t.Fatalf("Content-Length %q, body %d bytes", cl, second.Body.Len())
	}
}
