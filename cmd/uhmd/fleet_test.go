package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uhm/internal/router"
	"uhm/internal/service"
)

// newTestFleet assembles a real in-process fleet: n service-backed uhmd
// handlers behind a router, plus a local fallback service.  This is the
// integration twin of the CI multi-backend smoke.
func newTestFleet(t *testing.T, n int) (*httptest.Server, []*service.Service, *router.Router) {
	t.Helper()
	var addrs []string
	var svcs []*service.Service
	for i := 0; i < n; i++ {
		svc := service.New(service.Options{})
		backend := httptest.NewServer(newServer(svc))
		t.Cleanup(backend.Close)
		addrs = append(addrs, backend.URL)
		svcs = append(svcs, svc)
	}
	fallback := service.New(service.Options{})
	rt := router.New(router.Options{
		Backends: addrs,
		Fallback: newServer(fallback),
		Logf:     t.Logf,
	})
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return front, svcs, rt
}

// TestFleetSingleBuildInvariant: through the router, every distinct program
// is built on exactly one backend, however many times and from however many
// clients it is requested — the fleet-wide form of the registry's
// build-once guarantee.
func TestFleetSingleBuildInvariant(t *testing.T) {
	front, svcs, _ := newTestFleet(t, 2)

	const programs = 12
	for round := 0; round < 3; round++ {
		for i := 0; i < programs; i++ {
			body := fmt.Sprintf(`{"source":"program p%d; var x; begin x := %d; print x end.","strategy":"dtb"}`, i, i)
			status, data := postJSON(t, front.URL+"/v1/run", body)
			if status != http.StatusOK {
				t.Fatalf("round %d run %d: status %d: %s", round, i, status, data)
			}
		}
	}

	var totalBuilds int64
	for i, svc := range svcs {
		st := svc.Stats()
		if st.Registry.BuildErrors != 0 {
			t.Fatalf("backend %d build errors: %+v", i, st.Registry)
		}
		totalBuilds += st.Registry.Builds
	}
	if totalBuilds != programs {
		t.Fatalf("fleet built %d artifacts for %d distinct programs", totalBuilds, programs)
	}
	// Both backends took a share (the ring actually split the key space).
	for i, svc := range svcs {
		if svc.Stats().Registry.Builds == 0 {
			t.Fatalf("backend %d built nothing — placement degenerate", i)
		}
	}
}

// TestFleetBatchThroughRouter: a batch spanning the key space splits across
// real backends and merges losslessly, preserving the single-build
// invariant and per-item error isolation.
func TestFleetBatchThroughRouter(t *testing.T) {
	front, svcs, _ := newTestFleet(t, 2)

	var items []string
	const good = 10
	for i := 0; i < good; i++ {
		items = append(items, fmt.Sprintf(`{"source":"program b%d; var y; begin y := %d; print y end.","strategy":"dtb"}`, i, i))
	}
	items = append(items, `{"source":"this is not minilang"}`)
	body := `{"items":[` + strings.Join(items, ",") + `]}`

	status, data := postJSON(t, front.URL+"/batch/run", body)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, data)
	}
	var resp batchRunResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != good+1 || resp.Failed != 1 {
		t.Fatalf("items=%d failed=%d, want %d/1", len(resp.Items), resp.Failed, good+1)
	}
	for i := 0; i < good; i++ {
		if resp.Items[i].Status != http.StatusOK || resp.Items[i].Report == nil {
			t.Fatalf("item %d: %+v", i, resp.Items[i])
		}
		if got := resp.Items[i].Report.Program; got != "submitted" {
			t.Fatalf("item %d program label %q, want submitted", i, got)
		}
	}
	if resp.Items[good].Status != http.StatusUnprocessableEntity {
		t.Fatalf("bad item status %d, want 422", resp.Items[good].Status)
	}
	// Builds counts started builds, including the bad item's failed one;
	// successful builds are what the single-build invariant bounds.
	var succeeded int64
	for _, svc := range svcs {
		st := svc.Stats()
		succeeded += st.Registry.Builds - st.Registry.BuildErrors
	}
	if succeeded != good {
		t.Fatalf("fleet completed %d builds from the batch, want %d", succeeded, good)
	}
}

// TestFleetStatsEndToEnd: the router's aggregated stats over real backends
// expose the fleet build count CI gates on.
func TestFleetStatsEndToEnd(t *testing.T) {
	front, _, _ := newTestFleet(t, 2)

	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"source":"program s%d; var z; begin z := %d; print z end."}`, i, i)
		if status, data := postJSON(t, front.URL+"/v1/run", body); status != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, status, data)
		}
	}
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg struct {
		Fleet router.FleetStats `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg.Fleet.Builds != 6 {
		t.Fatalf("aggregated fleet builds = %d, want 6", agg.Fleet.Builds)
	}
	if agg.Fleet.Reachable != 2 {
		t.Fatalf("reachable = %d, want 2", agg.Fleet.Reachable)
	}
}

// TestFleetFallbackServesWhenBackendsDie: closing every backend mid-stream
// degrades to the local fallback service with zero failed requests.
func TestFleetFallbackServesWhenBackendsDie(t *testing.T) {
	svc := service.New(service.Options{})
	backend := httptest.NewServer(newServer(svc))
	fallback := service.New(service.Options{})
	rt := router.New(router.Options{
		Backends: []string{backend.URL},
		Fallback: newServer(fallback),
		Logf:     t.Logf,
	})
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	if status, data := postJSON(t, front.URL+"/v1/run", `{"workload":"fib"}`); status != http.StatusOK {
		t.Fatalf("pre-death run: %d %s", status, data)
	}
	backend.Close()
	for i := 0; i < 5; i++ {
		if status, data := postJSON(t, front.URL+"/v1/run", `{"workload":"sieve"}`); status != http.StatusOK {
			t.Fatalf("post-death run %d: %d %s", i, status, data)
		}
	}
	if fallback.Stats().Registry.Builds != 1 {
		t.Fatalf("fallback built %d artifacts, want 1 (sieve)", fallback.Stats().Registry.Builds)
	}
}
