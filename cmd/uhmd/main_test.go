package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"uhm/internal/service"
	"uhm/internal/workload"
)

func newTestServer(t *testing.T, opts service.Options) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(opts)
	ts := httptest.NewServer(newServer(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getStats(t *testing.T, baseURL string) service.Stats {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Workers int           `json:"workers"`
		Stats   service.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Stats
}

// TestRunCacheHitVsMiss is the acceptance pin at the HTTP layer: the first
// request builds, the warmed repeat request does zero artifact rebuild work
// (Builds constant, registry hit) and replays on the pooled simulator (pool
// hit), with byte-identical output and cost.
func TestRunCacheHitVsMiss(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	body := `{"workload":"sieve","strategy":"dtb"}`

	status, data := postJSON(t, ts.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", status, data)
	}
	var first runResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	st := getStats(t, ts.URL)
	if st.Registry.Builds != 1 || st.Registry.Misses != 1 {
		t.Fatalf("cold stats = %+v, want 1 build / 1 miss", st.Registry)
	}
	if st.Pool.Misses != 1 || st.Pool.Idle != 1 {
		t.Fatalf("cold pool = %+v, want 1 miss and the replayer parked idle", st.Pool)
	}

	status, data = postJSON(t, ts.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("warm run: status %d: %s", status, data)
	}
	var second runResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	st = getStats(t, ts.URL)
	if st.Registry.Builds != 1 {
		t.Fatalf("warm request rebuilt the artifact: %+v", st.Registry)
	}
	if st.Registry.Hits == 0 {
		t.Fatalf("warm request missed the registry: %+v", st.Registry)
	}
	if st.Pool.Hits != 1 {
		t.Fatalf("warm request did not reuse the pooled replayer: %+v", st.Pool)
	}
	if !slices.Equal(first.Report.Output, second.Report.Output) ||
		first.Report.TotalCycles != second.Report.TotalCycles {
		t.Fatalf("warm report differs: %+v vs %+v", first.Report, second.Report)
	}
}

// TestRunSubmittedSourceContentAddressed: submitting the text of a built-in
// workload lands on the same registry entry as running it by name — content
// addressing does not care what the program is called.
func TestRunSubmittedSourceContentAddressed(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	src, err := workload.Source("fib")
	if err != nil {
		t.Fatal(err)
	}
	srcJSON, _ := json.Marshal(src)

	status, data := postJSON(t, ts.URL+"/v1/run", `{"workload":"fib","strategy":"cache"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var byName runResponse
	if err := json.Unmarshal(data, &byName); err != nil {
		t.Fatal(err)
	}

	status, data = postJSON(t, ts.URL+"/v1/run",
		fmt.Sprintf(`{"source":%s,"name":"my-program","strategy":"cache"}`, srcJSON))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var bySource runResponse
	if err := json.Unmarshal(data, &bySource); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(byName.Report.Output, bySource.Report.Output) {
		t.Fatalf("outputs differ: %v vs %v", byName.Report.Output, bySource.Report.Output)
	}
	st := getStats(t, ts.URL)
	if st.Registry.Builds != 1 {
		t.Fatalf("identical source built twice: %+v", st.Registry)
	}
}

// TestSingleflightConcurrentSubmissions: many clients submitting the same
// program at once produce exactly one build.
func TestSingleflightConcurrentSubmissions(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	src, err := workload.Source("loopsum")
	if err != nil {
		t.Fatal(err)
	}
	srcJSON, _ := json.Marshal(src)
	body := fmt.Sprintf(`{"source":%s,"strategy":"conventional"}`, srcJSON)

	const clients = 16
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := getStats(t, ts.URL)
	if st.Registry.Builds != 1 {
		t.Fatalf("Builds = %d, want 1 (singleflight dedup under %d concurrent submissions)",
			st.Registry.Builds, clients)
	}
	if st.Registry.Hits != clients-1 {
		t.Fatalf("Hits = %d, want %d", st.Registry.Hits, clients-1)
	}
}

// TestCompareEndpoint: all five organisations agree through the server path.
func TestCompareEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	status, data := postJSON(t, ts.URL+"/v1/compare", `{"workload":"fib"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var resp compareResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Agree {
		t.Fatalf("strategies disagree: %s", resp.Error)
	}
	if len(resp.Reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(resp.Reports))
	}
	for _, rep := range resp.Reports {
		if !slices.Equal(rep.Output, resp.Output) {
			t.Fatalf("%s output %v, want %v", rep.Strategy, rep.Output, resp.Output)
		}
		// The service hot path serves trace-derived reports; the trace is
		// recorded under the artifact's sync.Once on the cold request, so
		// even a comparison's first report is derived.
		if !rep.Derived {
			t.Fatalf("%s report not trace-derived", rep.Strategy)
		}
	}
}

// TestConformanceEndpointPinnedSeeds: the pinned regression seeds (the ones
// that once exposed a real evaluation-order bug) conform through the server.
func TestConformanceEndpointPinnedSeeds(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	for _, seed := range []int64{38, 48} {
		status, data := postJSON(t, ts.URL+"/v1/conformance", fmt.Sprintf(`{"seed":%d}`, seed))
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, data)
		}
		var resp conformanceResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Conforms {
			t.Fatalf("seed %d diverges through the server path:\n%s",
				seed, strings.Join(resp.Divergences, "\n"))
		}
	}
}

// TestExperimentEndpoint: a named experiment renders through the registry-
// backed engine, and its workload builds land in the shared cache.
func TestExperimentEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	status, data := postJSON(t, ts.URL+"/v1/experiments", `{"name":"empirical","workload":"loopsum"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var resp experimentResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "loopsum") {
		t.Fatalf("experiment text does not mention the workload:\n%s", resp.Text)
	}
	if st := getStats(t, ts.URL); st.Registry.Builds == 0 {
		t.Fatal("experiment did not build through the registry")
	}
}

// TestMalformedRequests walks the error surface: syntax, validation,
// routing and method errors all answer with the right status and a JSON
// error body.
func TestMalformedRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"bad json", "POST", "/v1/run", `{"workload":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/run", `{"wrkload":"fib"}`, http.StatusBadRequest},
		{"no program", "POST", "/v1/run", `{}`, http.StatusBadRequest},
		{"both programs", "POST", "/v1/run", `{"workload":"fib","source":"x"}`, http.StatusBadRequest},
		{"bad strategy", "POST", "/v1/run", `{"workload":"fib","strategy":"quantum"}`, http.StatusBadRequest},
		{"bad level", "POST", "/v1/run", `{"workload":"fib","level":"mem9"}`, http.StatusBadRequest},
		{"bad degree", "POST", "/v1/run", `{"workload":"fib","degree":"gzip"}`, http.StatusBadRequest},
		{"negative budget", "POST", "/v1/run", `{"workload":"fib","max_instructions":-1}`, http.StatusBadRequest},
		{"budget above server bound", "POST", "/v1/run", `{"workload":"fib","max_instructions":99999999999}`, http.StatusBadRequest},
		{"unknown workload", "POST", "/v1/run", `{"workload":"nope"}`, http.StatusUnprocessableEntity},
		{"unparsable source", "POST", "/v1/run", `{"source":"not minilang"}`, http.StatusUnprocessableEntity},
		{"strategy on compare", "POST", "/v1/compare", `{"workload":"fib","strategy":"dtb"}`, http.StatusBadRequest},
		{"conformance empty", "POST", "/v1/conformance", `{}`, http.StatusBadRequest},
		{"conformance both", "POST", "/v1/conformance", `{"source":"x","seed":1}`, http.StatusBadRequest},
		{"unknown experiment", "POST", "/v1/experiments", `{"name":"figure9"}`, http.StatusBadRequest},
		{"get on run", "GET", "/v1/run", ``, http.StatusMethodNotAllowed},
		{"post on stats", "POST", "/v1/stats", `{}`, http.StatusMethodNotAllowed},
		{"unknown path", "GET", "/v1/nope", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				data, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
		})
	}
}

// TestRunUnprocessableIsErrorJSON: failures carry a JSON error payload.
func TestRunUnprocessableIsErrorJSON(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	status, data := postJSON(t, ts.URL+"/v1/run", `{"workload":"nope"}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", status, data)
	}
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("want an error payload, got %s", data)
	}
}

// TestGracefulShutdownMidRequest: a request in flight when Shutdown is
// called runs to completion and is answered before the server exits.
func TestGracefulShutdownMidRequest(t *testing.T) {
	svc := service.New(service.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newServer(svc)}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// A genuinely slow request: the full conformance cross-product.
	type result struct {
		status int
		body   []byte
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/conformance",
			"application/json", bytes.NewReader([]byte(`{"seed":38}`)))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		resCh <- result{status: resp.StatusCode, body: data}
	}()

	// Give the request time to be admitted, then shut down underneath it.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request answered %d: %s", res.status, res.body)
	}
	var resp conformanceResponse
	if err := json.Unmarshal(res.body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Conforms {
		t.Fatalf("drained request returned divergences: %v", resp.Divergences)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// After shutdown, new connections are refused.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestHealthAndWorkloads covers the two trivial read endpoints.
func TestHealthAndWorkloads(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["workloads"]) == 0 {
		t.Fatal("no workloads listed")
	}
}
