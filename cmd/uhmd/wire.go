package main

import (
	"uhm/internal/core"
	"uhm/internal/sim"
)

// The wire types of the uhmd JSON API.  Enumerations travel as their String()
// names (the same names the CLI flags use), reports as a flat summary of
// sim.Report.

// runRequest selects a program and a point of the simulation space.  Exactly
// one of Workload (a built-in) or Source (submitted MiniLang text) must be
// set.  Level, Degree and Strategy default like the uhmrun flags: stack,
// huffman, dtb.
type runRequest struct {
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
	// Name labels submitted source in reports and logs (default "submitted").
	Name     string `json:"name,omitempty"`
	Level    string `json:"level,omitempty"`
	Degree   string `json:"degree,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// MaxInstructions optionally bounds the run (0 selects the default).
	MaxInstructions int64 `json:"max_instructions,omitempty"`
}

// reportJSON is the wire form of one simulation report.
type reportJSON struct {
	Program         string  `json:"program"`
	Level           string  `json:"level"`
	Strategy        string  `json:"strategy"`
	Degree          string  `json:"degree"`
	Output          []int64 `json:"output"`
	Instructions    int64   `json:"instructions"`
	FetchCycles     int64   `json:"fetch_cycles"`
	DecodeCycles    int64   `json:"decode_cycles"`
	TranslateCycles int64   `json:"translate_cycles"`
	SemanticCycles  int64   `json:"semantic_cycles"`
	TotalCycles     int64   `json:"total_cycles"`
	PerInstruction  float64 `json:"cycles_per_instruction"`
	StaticBits      int     `json:"static_bits"`
	CodebookBits    int     `json:"codebook_bits"`
	ExpandedWords   int     `json:"expanded_words,omitempty"`
	CompiledWords   int     `json:"compiled_words,omitempty"`
	// The hit ratios are always present (a measured 0.0 is a legitimate
	// value, distinct from "not applicable"); they are meaningful only for
	// the dtb and cache strategies respectively.
	DTBHitRatio   float64 `json:"dtb_hit_ratio"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Derived reports that the costs were derived from the program's shared
	// execution trace rather than a full simulation (the two are
	// field-for-field identical; this records which path served the request).
	Derived bool `json:"derived"`
}

func reportToJSON(program string, level core.Level, rep *sim.Report) reportJSON {
	return reportJSON{
		Program:         program,
		Level:           level.String(),
		Strategy:        rep.Strategy.String(),
		Degree:          rep.Degree.String(),
		Output:          rep.Output,
		Instructions:    rep.Instructions,
		FetchCycles:     int64(rep.FetchCycles),
		DecodeCycles:    int64(rep.DecodeCycles),
		TranslateCycles: int64(rep.TranslateCycles),
		SemanticCycles:  int64(rep.SemanticCycles),
		TotalCycles:     int64(rep.TotalCycles),
		PerInstruction:  rep.PerInstruction,
		StaticBits:      rep.StaticBits,
		CodebookBits:    rep.CodebookBits,
		ExpandedWords:   rep.ExpandedWords,
		CompiledWords:   rep.CompiledWords,
		DTBHitRatio:     rep.Measured.HD,
		CacheHitRatio:   rep.Measured.HC,
		Derived:         rep.Derived,
	}
}

// runResponse wraps a single report.
type runResponse struct {
	Report reportJSON `json:"report"`
}

// compareResponse carries every organisation's report plus the equivalence
// verdict.  On divergence Agree is false and Error names the mismatch; the
// reports are still included so the client can diff them.
type compareResponse struct {
	Output  []int64      `json:"output"`
	Agree   bool         `json:"agree"`
	Error   string       `json:"error,omitempty"`
	Reports []reportJSON `json:"reports"`
}

// batchRequest carries many runs in one envelope: one decode, one admission
// slot, one response write for the whole batch.  Items are ordinary
// runRequests; for /batch/compare the per-item strategy must be empty, as on
// /v1/compare.
type batchRequest struct {
	Items []runRequest `json:"items"`
}

// batchRunItem is one item's outcome in a /batch/run response.  Status is the
// HTTP status the item would have received as a standalone /v1/run request;
// exactly one of Report (200) or Error (anything else) is set.  One bad item
// fails itself, never its siblings or the envelope.
type batchRunItem struct {
	Status int         `json:"status"`
	Report *reportJSON `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// batchRunResponse answers /batch/run: per-item outcomes in request order,
// plus the failed count so clients need not rescan.
type batchRunResponse struct {
	Items  []batchRunItem `json:"items"`
	Failed int            `json:"failed"`
}

// batchCompareItem is one item's outcome in a /batch/compare response: a
// standalone compareResponse tagged with the item's HTTP status.
type batchCompareItem struct {
	Status  int          `json:"status"`
	Output  []int64      `json:"output,omitempty"`
	Agree   bool         `json:"agree"`
	Error   string       `json:"error,omitempty"`
	Reports []reportJSON `json:"reports,omitempty"`
}

// batchCompareResponse answers /batch/compare.
type batchCompareResponse struct {
	Items  []batchCompareItem `json:"items"`
	Failed int                `json:"failed"`
}

// conformanceRequest checks one program against the full differential
// cross-product: either submitted Source, or a Seed for the built-in
// generator (the pinned regression seeds, say).
type conformanceRequest struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Seed   *int64 `json:"seed,omitempty"`
}

type conformanceResponse struct {
	Name        string   `json:"name"`
	Conforms    bool     `json:"conforms"`
	Divergences []string `json:"divergences,omitempty"`
}

// experimentRequest names one of uhmbench's experiments; Workload optionally
// overrides the default workload set of the figure experiments.
type experimentRequest struct {
	Name     string `json:"name"`
	Workload string `json:"workload,omitempty"`
}

type experimentResponse struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID echoes the request's X-Request-ID (or the server-generated
	// one) so a failed call can be correlated with its access log line.
	RequestID string `json:"request_id,omitempty"`
}

// Request-field parsers: an omitted field selects the same default the
// uhmrun flags do; everything else resolves through core's shared parsers.

func parseLevel(name string) (core.Level, error) {
	if name == "" {
		return core.LevelStack, nil
	}
	return core.ParseLevel(name)
}

func parseDegree(name string) (core.Degree, error) {
	if name == "" {
		return core.DefaultConfig().Degree, nil
	}
	return core.ParseDegree(name)
}

func parseStrategy(name string) (core.Strategy, error) {
	if name == "" {
		return core.WithDTB, nil
	}
	return core.ParseStrategy(name)
}
