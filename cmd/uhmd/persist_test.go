package main

import (
	"encoding/json"
	"flag"
	"net/http"
	"testing"
	"time"

	"uhm/internal/service"
	"uhm/internal/store"
)

// TestFlagParsing pins the flag surface, including the PR's -store-dir and
// -warm-start, against a private flag set.
func TestFlagParsing(t *testing.T) {
	parse := func(t *testing.T, args ...string) options {
		t.Helper()
		var opts options
		fs := flag.NewFlagSet("uhmd", flag.ContinueOnError)
		registerFlags(fs, &opts)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("parse %q: %v", args, err)
		}
		return opts
	}

	opts := parse(t)
	if opts.addr != "localhost:8080" || opts.cacheBytes != 256<<20 ||
		opts.storeDir != "" || opts.warmStart != 0 {
		t.Fatalf("defaults = %+v", opts)
	}
	if err := opts.validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}

	opts = parse(t, "-store-dir", "/tmp/artifacts", "-warm-start", "-1",
		"-queue-timeout", "3s", "-workers", "4")
	if opts.storeDir != "/tmp/artifacts" || opts.warmStart != -1 ||
		opts.queueTimeout != 3*time.Second || opts.workers != 4 {
		t.Fatalf("parsed = %+v", opts)
	}
	if err := opts.validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}

	opts = parse(t, "-store-dir", "d", "-warm-start", "8")
	if err := opts.validate(); err != nil {
		t.Fatalf("bounded warm start rejected: %v", err)
	}

	opts = parse(t, "-warm-start", "5")
	if err := opts.validate(); err == nil {
		t.Fatal("-warm-start without -store-dir accepted")
	}
	opts = parse(t, "-store-dir", "d", "-warm-start", "-2")
	if err := opts.validate(); err == nil {
		t.Fatal("-warm-start -2 accepted")
	}

	var opts2 options
	fs := flag.NewFlagSet("uhmd", flag.ContinueOnError)
	fs.SetOutput(discard{})
	registerFlags(fs, &opts2)
	if err := fs.Parse([]string{"-warm-start", "many"}); err == nil {
		t.Fatal("non-integer -warm-start accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestServerWarmRestart is the restart cycle at the HTTP layer: a server
// populates its store, "dies", and its replacement — warm-started from the
// same directory — answers the previous working set byte-identically with
// zero rebuilds.
func TestServerWarmRestart(t *testing.T) {
	dir := t.TempDir()
	open := func(t *testing.T) *store.Store {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	ts1, _ := newTestServer(t, service.Options{Store: open(t)})
	bodies := []string{
		`{"workload":"fib","strategy":"dtb"}`,
		`{"workload":"sieve","strategy":"cache"}`,
	}
	var want []runResponse
	for _, body := range bodies {
		// Twice each: the second request syncs the recorded trace into the
		// container, so the restarted server derives without re-executing.
		for i := 0; i < 2; i++ {
			status, data := postJSON(t, ts1.URL+"/v1/run", body)
			if status != http.StatusOK {
				t.Fatalf("first server: status %d: %s", status, data)
			}
			var resp runResponse
			if err := json.Unmarshal(data, &resp); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = append(want, resp)
			}
		}
	}
	ts1.Close()

	ts2, svc2 := newTestServer(t, service.Options{Store: open(t)})
	loaded, err := svc2.Warmstart(-1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != len(bodies) {
		t.Fatalf("warm start loaded %d artifacts, want %d", loaded, len(bodies))
	}
	for i, body := range bodies {
		status, data := postJSON(t, ts2.URL+"/v1/run", body)
		if status != http.StatusOK {
			t.Fatalf("restarted server: status %d: %s", status, data)
		}
		var resp runResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Report.SemanticCycles != want[i].Report.SemanticCycles ||
			resp.Report.Instructions != want[i].Report.Instructions {
			t.Fatalf("restarted run %d diverges: %+v vs %+v", i, resp.Report, want[i].Report)
		}
	}
	st := getStats(t, ts2.URL)
	if st.Registry.Builds != 0 {
		t.Fatalf("restarted server did %d rebuilds, want 0", st.Registry.Builds)
	}
	if st.Registry.WarmLoads != int64(len(bodies)) {
		t.Fatalf("restarted server stats = %+v, want %d warm loads", st.Registry, len(bodies))
	}
}
