// Command uhmd is the long-running UHM service: the paper's amortisation
// argument applied to a server.  Where cmd/uhmrun buffers binding work —
// parse, compile, encode, predecode, closure-compile — for the lifetime of
// one process run and then throws it away, uhmd keeps every built artifact
// in a content-addressed registry and every warmed simulator in a replayer
// pool, shared by all concurrent requests.  A repeated request does zero
// rebuild work and replays on a simulator whose hierarchy, DTB, cache and
// machine already exist (the 0 allocs/op replay loop).
//
// Endpoints (JSON over HTTP):
//
//	GET  /healthz          liveness
//	GET  /v1/stats         registry and pool counters
//	GET  /v1/workloads     built-in workload names
//	POST /v1/run           one program under one organisation
//	POST /v1/compare       one program under every organisation + equivalence verdict
//	POST /v1/conformance   full differential cross-product on a program or generator seed
//	POST /v1/experiments   a named uhmbench experiment, rendered
//
// Usage:
//
//	uhmd -addr :8080
//	curl -s localhost:8080/v1/run -d '{"workload":"sieve","strategy":"dtb"}'
//	curl -s localhost:8080/v1/stats
//
// Batch endpoints (POST /batch/run, /batch/compare) carry many runs in one
// envelope: one decode, one admission slot, one response write, with
// per-item statuses so one bad program fails itself, not its siblings.
//
// Fleet mode: with -router and -backends, this process stops simulating and
// starts placing — each request's content-addressed program key is
// consistent-hashed across the backend fleet (internal/router), so every
// distinct program is built on exactly one backend.  The local service
// remains as the fallback when all backends are down:
//
//	uhmd -addr :9000 -router -backends localhost:9001,localhost:9002
//
// Overload is answered, not queued forever: a request that cannot get a
// worker slot within -queue-timeout receives a structured 503 with a
// Retry-After header.  Every response carries an X-Request-ID (echoed from
// the request, or generated) that also tags the access log line and the JSON
// error body.  -faults activates the deterministic fault-injection plan from
// internal/faultinject — a test-and-chaos facility, never set in production.
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners close, in-
// flight requests run to completion (bounded by -drain), new work is
// refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"uhm/internal/faultinject"
	"uhm/internal/router"
	"uhm/internal/service"
	"uhm/internal/store"
)

// options carries the parsed uhmd flags into run.
type options struct {
	addr           string
	workers        int
	cacheBytes     int64
	poolIdle       int
	drain          time.Duration
	queueTimeout   time.Duration
	requestTimeout time.Duration
	faults         string
	faultSeed      int64
	storeDir       string
	warmStart      int

	// Fleet mode: -router turns this uhmd into the consistent-hash front end
	// for the -backends fleet instead of a single-node server.  The local
	// service still exists in router mode — it is the fallback that serves
	// single-node when every backend is down.
	router          bool
	backends        string
	probeInterval   time.Duration
	backendInflight int
}

// registerFlags binds the uhmd flags to opts on the given flag set, so tests
// can parse argument vectors without touching the process-global set.
func registerFlags(fs *flag.FlagSet, opts *options) {
	fs.StringVar(&opts.addr, "addr", "localhost:8080", "listen address")
	fs.IntVar(&opts.workers, "workers", 0, "bound on concurrently served requests (0 = one per CPU)")
	fs.Int64Var(&opts.cacheBytes, "cache-bytes", 256<<20, "artifact-registry byte budget (0 = unbounded)")
	fs.IntVar(&opts.poolIdle, "pool-idle", 0, "idle replayers kept per (program, strategy, config) class (0 = one per CPU)")
	fs.DurationVar(&opts.drain, "drain", 30*time.Second, "graceful-shutdown drain budget for in-flight requests")
	fs.DurationVar(&opts.queueTimeout, "queue-timeout", 10*time.Second, "bound on waiting for a worker slot before answering 503 (0 = wait forever)")
	fs.DurationVar(&opts.requestTimeout, "request-timeout", 0, "per-request deadline (0 = none)")
	fs.StringVar(&opts.faults, "faults", "", "fault-injection plan spec, e.g. 'registry/build:p=0.1,count=3' (testing only)")
	fs.Int64Var(&opts.faultSeed, "fault-seed", 1, "seed for the -faults plan's PRNG streams")
	fs.StringVar(&opts.storeDir, "store-dir", "", "persistent artifact-store directory; built artifacts are written through to it and misses read through it (empty = memory-only)")
	fs.IntVar(&opts.warmStart, "warm-start", 0, "preload the hottest N artifacts from -store-dir before serving (-1 = all, 0 = none)")
	fs.BoolVar(&opts.router, "router", false, "serve as the fleet front end: consistent-hash requests across -backends instead of simulating locally")
	fs.StringVar(&opts.backends, "backends", "", "comma-separated uhmd backend addresses (host:port), required with -router")
	fs.DurationVar(&opts.probeInterval, "probe-interval", 0, "router health-probe period (0 = 250ms default)")
	fs.IntVar(&opts.backendInflight, "backend-inflight", 0, "router per-backend in-flight request cap (0 = 64 default)")
}

// validate rejects flag combinations run could only fail on later.
func (o *options) validate() error {
	if o.warmStart != 0 && o.storeDir == "" {
		return fmt.Errorf("-warm-start requires -store-dir")
	}
	if o.warmStart < -1 {
		return fmt.Errorf("-warm-start must be -1, 0 or positive (got %d)", o.warmStart)
	}
	if o.router && len(o.backendList()) == 0 {
		return fmt.Errorf("-router requires -backends")
	}
	if !o.router && o.backends != "" {
		return fmt.Errorf("-backends requires -router")
	}
	return nil
}

// backendList splits -backends, dropping empty segments so trailing commas
// are harmless.
func (o *options) backendList() []string {
	var out []string
	for _, b := range strings.Split(o.backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}

func main() {
	var opts options
	fs := flag.NewFlagSet("uhmd", flag.ExitOnError)
	registerFlags(fs, &opts)
	fs.Parse(os.Args[1:])
	if err := opts.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "uhmd:", err)
		os.Exit(2)
	}

	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "uhmd:", err)
		os.Exit(1)
	}
}

func run(opts options) error {
	if opts.faults != "" {
		plan, err := faultinject.ParseSpec(opts.faultSeed, opts.faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		restore := faultinject.Activate(plan)
		defer restore()
		log.Printf("uhmd: FAULT INJECTION ACTIVE: seed=%d plan=%s", opts.faultSeed, plan)
	}

	var tier *store.Store
	if opts.storeDir != "" {
		var err error
		if tier, err = store.Open(opts.storeDir); err != nil {
			return fmt.Errorf("-store-dir: %w", err)
		}
	}

	svc := service.New(service.Options{
		CapacityBytes: opts.cacheBytes,
		MaxIdlePerKey: opts.poolIdle,
		Workers:       opts.workers,
		QueueTimeout:  opts.queueTimeout,
		Store:         tier,
	})
	if opts.warmStart != 0 {
		loaded, err := svc.Warmstart(opts.warmStart)
		if err != nil {
			return fmt.Errorf("-warm-start: %w", err)
		}
		log.Printf("uhmd: warm start loaded %d artifacts from %s", loaded, opts.storeDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// In-flight requests keep running through the drain window — their base
	// context is NOT the signal context.  Only when the drain budget expires
	// are stragglers cancelled, so shutdown is graceful first, firm second.
	baseCtx, interruptInflight := context.WithCancel(context.Background())
	defer interruptInflight()

	handler := newServer(svc)
	handler.requestTimeout = opts.requestTimeout

	// In router mode the process fronts the fleet: requests consistent-hash
	// across -backends, and the local single-node handler is the fallback
	// that keeps serving when every backend is down.
	var rootHandler http.Handler = handler
	if opts.router {
		rt := router.New(router.Options{
			Backends:      opts.backendList(),
			ProbeInterval: opts.probeInterval,
			MaxInflight:   opts.backendInflight,
			Fallback:      handler,
			Logf:          log.Printf,
		})
		rt.Start()
		defer rt.Close()
		rootHandler = rt
		log.Printf("uhmd: router mode: fanning out across %d backends (%s)",
			len(opts.backendList()), opts.backends)
	}

	srv := &http.Server{
		Addr:              opts.addr,
		Handler:           rootHandler,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("uhmd: serving on %s (%d workers, %d MiB artifact budget, queue timeout %s)",
			opts.addr, svc.Workers(), opts.cacheBytes>>20, opts.queueTimeout)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("uhmd: shutting down, draining in-flight requests (budget %s)", opts.drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain budget exhausted: cancel the stragglers' contexts and close
		// their connections rather than leaking them.
		interruptInflight()
		_ = srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	log.Printf("uhmd: drained cleanly")
	return nil
}
