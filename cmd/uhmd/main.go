// Command uhmd is the long-running UHM service: the paper's amortisation
// argument applied to a server.  Where cmd/uhmrun buffers binding work —
// parse, compile, encode, predecode, closure-compile — for the lifetime of
// one process run and then throws it away, uhmd keeps every built artifact
// in a content-addressed registry and every warmed simulator in a replayer
// pool, shared by all concurrent requests.  A repeated request does zero
// rebuild work and replays on a simulator whose hierarchy, DTB, cache and
// machine already exist (the 0 allocs/op replay loop).
//
// Endpoints (JSON over HTTP):
//
//	GET  /healthz          liveness
//	GET  /v1/stats         registry and pool counters
//	GET  /v1/workloads     built-in workload names
//	POST /v1/run           one program under one organisation
//	POST /v1/compare       one program under every organisation + equivalence verdict
//	POST /v1/conformance   full differential cross-product on a program or generator seed
//	POST /v1/experiments   a named uhmbench experiment, rendered
//
// Usage:
//
//	uhmd -addr :8080
//	curl -s localhost:8080/v1/run -d '{"workload":"sieve","strategy":"dtb"}'
//	curl -s localhost:8080/v1/stats
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners close, in-
// flight requests run to completion (bounded by -drain), new work is
// refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uhm/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.Int("workers", 0, "bound on concurrently served requests (0 = one per CPU)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "artifact-registry byte budget (0 = unbounded)")
	poolIdle := flag.Int("pool-idle", 0, "idle replayers kept per (program, strategy, config) class (0 = one per CPU)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight requests")
	flag.Parse()

	if err := run(*addr, *workers, *cacheBytes, *poolIdle, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "uhmd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, cacheBytes int64, poolIdle int, drain time.Duration) error {
	svc := service.New(service.Options{
		CapacityBytes: cacheBytes,
		MaxIdlePerKey: poolIdle,
		Workers:       workers,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// In-flight requests keep running through the drain window — their base
	// context is NOT the signal context.  Only when the drain budget expires
	// are stragglers cancelled, so shutdown is graceful first, firm second.
	baseCtx, interruptInflight := context.WithCancel(context.Background())
	defer interruptInflight()

	srv := &http.Server{
		Addr:              addr,
		Handler:           newServer(svc),
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("uhmd: serving on %s (%d workers, %d MiB artifact budget)",
			addr, svc.Workers(), cacheBytes>>20)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("uhmd: shutting down, draining in-flight requests (budget %s)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain budget exhausted: cancel the stragglers' contexts and close
		// their connections rather than leaking them.
		interruptInflight()
		_ = srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	log.Printf("uhmd: drained cleanly")
	return nil
}
