module uhm

go 1.24
