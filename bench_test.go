// Package uhm holds the top-level benchmark harness: one benchmark per table
// and figure of the paper's evaluation, plus ablation benchmarks for the
// design choices DESIGN.md calls out.  Each benchmark regenerates its
// experiment through the public core façade, so `go test -bench=.` prints the
// same rows the cmd/uhmbench tool does (captured in EXPERIMENTS.md).
package uhm

import (
	"context"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/core"
	"uhm/internal/dir"
	"uhm/internal/dtb"
	"uhm/internal/perfmodel"
	"uhm/internal/psder"
	"uhm/internal/service"
	"uhm/internal/sim"
	"uhm/internal/store"
	"uhm/internal/translate"
	"uhm/internal/workload"
	"uhm/internal/workload/gen"
)

func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxInstructions = 5_000_000
	return cfg
}

// BenchmarkTable1Formats regenerates Table 1: the PSDER / PDP-11 / 360-RX
// format equivalence.
func BenchmarkTable1Formats(b *testing.B) {
	var report string
	for i := 0; i < b.N; i++ {
		report = core.Table1Report()
	}
	if report == "" {
		b.Fatal("empty Table 1 report")
	}
}

// BenchmarkTable2 regenerates the analytic Table 2 grid.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Table2().Cells) != 3 {
			b.Fatal("table 2 shape")
		}
	}
}

// BenchmarkTable3 regenerates the analytic Table 3 grid.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Table3().Cells) != 3 {
			b.Fatal("table 3 shape")
		}
	}
}

// BenchmarkFigure1Sweep regenerates the representation-space sweep (Figure 1)
// for one workload.
func BenchmarkFigure1Sweep(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := core.Figure1([]string{"loopsum"}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure2DTBHitRatio regenerates the DTB capacity sweep (Figure 2).
func BenchmarkFigure2DTBHitRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Figure2("sieve", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Activity regenerates the per-unit activity report
// (Figure 3).
func BenchmarkFigure3Activity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure3("fib", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkINTERPHitMiss regenerates the INTERP hit/miss path statistics
// (Figure 4).
func BenchmarkINTERPHitMiss(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		stats, err := core.Figure4("sieve", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Interps == 0 {
			b.Fatal("no INTERP executions")
		}
	}
}

// BenchmarkUHMStrategies measures the simulated organisations individually on
// a loop-dominated workload (the empirical counterpart of the T1/T2/T3
// comparison).
func BenchmarkUHMStrategies(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := benchConfig()
	for _, strategy := range sim.Strategies() {
		b.Run(strategy.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := sim.Run(dp, strategy, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.PerInstruction, "cycles/DIR-instr")
			}
		})
	}
}

// BenchmarkEmpiricalStrategies regenerates the Section 7 empirical
// cross-check over the default workload set.
func BenchmarkEmpiricalStrategies(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.Empirical([]string{"loopsum", "fib"}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodingCompaction regenerates the §3.2 compaction study.
func BenchmarkEncodingCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Compaction([]string{"sieve"}, core.LevelStack)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Reduction[core.DegreePair]*100, "%saved")
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---------

// BenchmarkAblationEncodingDegree measures the conventional organisation at
// every encoding degree: the decode-cost / program-size trade-off.
func BenchmarkAblationEncodingDegree(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	for _, degree := range dir.Degrees() {
		b.Run(degree.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Degree = degree
			for i := 0; i < b.N; i++ {
				rep, err := sim.Run(dp, sim.Conventional, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Measured.D, "decode-steps/instr")
				b.ReportMetric(float64(rep.StaticBits), "static-bits")
			}
		})
	}
}

// BenchmarkAblationSemanticLevel measures the DTB organisation at every
// semantic level of the compiled DIR.
func BenchmarkAblationSemanticLevel(b *testing.B) {
	for _, level := range compile.Levels() {
		dp := workload.MustCompileAt("loopsum", level)
		b.Run(level.String(), func(b *testing.B) {
			cfg := benchConfig()
			for i := 0; i < b.N; i++ {
				rep, err := sim.Run(dp, sim.WithDTB, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Instructions), "DIR-instrs")
			}
		})
	}
}

// BenchmarkAblationDTBAllocation compares the fixed and variable-with-
// overflow allocation policies of §5.1.
func BenchmarkAblationDTBAllocation(b *testing.B) {
	dp := workload.MustCompileAt("sieve", compile.LevelStack)
	policies := map[string]dtb.Config{
		"fixed":    {Entries: 84, Assoc: 4, UnitWords: 8, Policy: dtb.Fixed},
		"overflow": {Entries: 84, Assoc: 4, UnitWords: 4, Policy: dtb.VariableOverflow, OverflowUnits: 32},
	}
	for name, dcfg := range policies {
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.DTB = dcfg
			for i := 0; i < b.N; i++ {
				rep, err := sim.Run(dp, sim.WithDTB, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Measured.HD*100, "hit%")
			}
		})
	}
}

// BenchmarkAblationModelHitRatio sweeps the analytic model's DTB hit ratio,
// showing how the paper's conclusions depend on locality.
func BenchmarkAblationModelHitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, hd := range []float64{0.5, 0.7, 0.8, 0.9, 0.99} {
			_, results, err := perfmodel.Sweep([]float64{10}, []float64{10}, func(p *perfmodel.Params) { p.HD = hd })
			if err != nil {
				b.Fatal(err)
			}
			if len(results) != 1 {
				b.Fatal("sweep shape")
			}
		}
	}
}

// --- Engine and dispatch benchmarks (parallel sweep + predecoded fast path) -

// BenchmarkEngineEmpirical compares the serial and parallel experiment
// engines on the Section 7 workload × strategy grid.
func BenchmarkEngineEmpirical(b *testing.B) {
	cfg := benchConfig()
	for _, bench := range []struct {
		name   string
		engine core.Engine
	}{
		{"serial", core.SerialEngine()},
		{"parallel", core.ParallelEngine()},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.engine.Empirical(context.Background(), nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineFigure1 compares the serial and parallel engines on the
// representation-space sweep.
func BenchmarkEngineFigure1(b *testing.B) {
	cfg := benchConfig()
	for _, bench := range []struct {
		name   string
		engine core.Engine
	}{
		{"serial", core.SerialEngine()},
		{"parallel", core.ParallelEngine()},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.engine.Figure1(context.Background(), nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Encode / predecode microbenchmarks (bit-level substrate) -------------

// BenchmarkEncode measures dir.Encode throughput at every encoding degree:
// the cost of producing the static representation, dominated by the bitio
// writer and the entropy coders.
func BenchmarkEncode(b *testing.B) {
	dp := workload.MustCompileAt("matmul", compile.LevelStack)
	for _, degree := range dir.Degrees() {
		b.Run(degree.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dir.Encode(dp, degree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredecode measures Binary.Predecode throughput at every encoding
// degree: the cost of one full decode pass over the static representation,
// dominated by the bitio reader and the Huffman decoders.
func BenchmarkPredecode(b *testing.B) {
	dp := workload.MustCompileAt("matmul", compile.LevelStack)
	for _, degree := range dir.Degrees() {
		bin, err := dir.Encode(dp, degree)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(degree.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bin.Predecode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// dispatchRounds is how many passes over the static program the dispatch
// benchmarks replay, standing in for a loop-dominated dynamic stream.
const dispatchRounds = 50

// BenchmarkDispatchMapMemo replicates the engine retired by the predecoded
// fast path: every dispatched instruction re-decodes the DIR binary (field
// extraction plus code-tree walks) and consults a freshly allocated per-run
// map[int]psder.Sequence memo.
func BenchmarkDispatchMapMemo(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	bin, err := dir.Encode(dp, dir.DegreeHuffman)
	if err != nil {
		b.Fatal(err)
	}
	n := bin.NumInstrs()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		dec := bin.NewDecoder()
		memo := make(map[int]psder.Sequence)
		for round := 0; round < dispatchRounds; round++ {
			for pc := 0; pc < n; pc++ {
				in, cost, err := dec.Decode(pc)
				if err != nil {
					b.Fatal(err)
				}
				seq, ok := memo[pc]
				if !ok {
					seq, err = translate.Translate(in, pc)
					if err != nil {
						b.Fatal(err)
					}
					memo[pc] = seq
				}
				sink += cost.Steps + seq.Words()
			}
		}
	}
	if sink == 0 {
		b.Fatal("no dispatch work performed")
	}
}

// BenchmarkDispatchPredecoded is the same dispatch stream over the shared
// predecoded program: a slice index per instruction, decode and translation
// paid once per run.  The binary is encoded outside the timer, exactly as
// the map-memo benchmark does, so the two time only dispatch-path work.
func BenchmarkDispatchPredecoded(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	bin, err := dir.Encode(dp, dir.DegreeHuffman)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		pp, err := sim.PredecodeBinary(bin)
		if err != nil {
			b.Fatal(err)
		}
		n := pp.NumInstrs()
		for round := 0; round < dispatchRounds; round++ {
			for pc := 0; pc < n; pc++ {
				sink += pp.DecodeCost(pc).Steps + pp.Sequence(pc).Words()
			}
		}
	}
	if sink == 0 {
		b.Fatal("no dispatch work performed")
	}
}

// BenchmarkReplaySteadyState measures the zero-allocation replay loop: one
// sim.Replayer per strategy, set up and warmed outside the timer, replaying
// the whole program per iteration.  The expected report is 0 allocs/op.
func BenchmarkReplaySteadyState(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := benchConfig()
	pp, err := sim.Predecode(dp, cfg.Degree)
	if err != nil {
		b.Fatal(err)
	}
	for _, strategy := range sim.Strategies() {
		b.Run(strategy.String(), func(b *testing.B) {
			rep, err := sim.NewReplayer(pp, strategy, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rep.Replay(); err != nil { // warm-up
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rep.Replay(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplayCompiled isolates the closure-compiled backend alongside
// the four interpreted organisations of BenchmarkReplaySteadyState: one warm
// Replayer on the Compiled strategy, replaying the whole program per
// iteration at 0 allocs/op.  The acceptance bar for the fifth organisation
// is that this is measurably faster than the expanded organisation — all
// fetch-decode-dispatch work is bound at compile time, so only the native
// semantics remain.
func BenchmarkReplayCompiled(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := benchConfig()
	pp, err := sim.Predecode(dp, cfg.Degree)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sim.NewReplayer(pp, sim.Compiled, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rep.Replay(); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := rep.Replay()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PerInstruction, "cycles/DIR-instr")
	}
}

// BenchmarkTraceRecord measures the "trace once" half of the trace-once/
// cost-many split: one canonical execution (the closure-compiled backend)
// recording the dynamic pc stream, output, peak depth and semantic cost.
// This is the amortised cost every derived report shares.
func BenchmarkTraceRecord(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := benchConfig()
	pp, err := sim.Predecode(dp, cfg.Degree)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pp.Trace(); err != nil { // build the compiled form outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := pp.RecordTrace()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(tr.Instructions()), "instrs/trace")
		}
	}
}

// BenchmarkDeriveReport measures the "cost many" half: streaming the recorded
// trace through each organisation's cost model on a warm Replayer.  Against
// BenchmarkReplaySteadyState this is the per-strategy speedup the tentpole
// buys — no semantics re-run, just the DTB/cache state machines and the
// per-pc cost tables.
func BenchmarkDeriveReport(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := benchConfig()
	pp, err := sim.Predecode(dp, cfg.Degree)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pp.Trace(); err != nil { // record outside the timer
		b.Fatal(err)
	}
	for _, strategy := range sim.Strategies() {
		b.Run(strategy.String(), func(b *testing.B) {
			rep, err := sim.NewReplayer(pp, strategy, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rep.Derive(); err != nil { // warm-up
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rep.Derive(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileProgram measures dir.Compile throughput: the one-time cost
// of lowering a workload to direct-threaded closures, the compiled
// organisation's analogue of BenchmarkPredecode.
func BenchmarkCompileProgram(b *testing.B) {
	for _, level := range compile.Levels() {
		dp := workload.MustCompileAt("matmul", level)
		b.Run(level.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dir.Compile(dp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Service-layer benchmarks (registry + replayer pool) ------------------

// BenchmarkServeConcurrent measures steady-state request handling through
// the service layer at GOMAXPROCS parallelism: mixed workloads × strategies,
// every artifact already resident in the content-addressed registry and
// every replayer warmed in the pool, exactly the shape of a loaded uhmd.
// The per-op cost is one registry hit, one pool checkout, one 0-alloc
// replay, one report clone.
func BenchmarkServeConcurrent(b *testing.B) {
	cfg := benchConfig()
	svc := service.New(service.Options{})
	ctx := context.Background()
	workloads := []string{"loopsum", "fib", "sieve"}
	strategies := sim.Strategies()
	// Warm every (workload, strategy) cell: builds, predecodes, compiles and
	// pools outside the timer.
	for _, w := range workloads {
		for _, s := range strategies {
			if _, err := svc.RunWorkload(ctx, w, core.LevelStack, s, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	before := svc.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w := workloads[i%len(workloads)]
			s := strategies[i/len(workloads)%len(strategies)]
			i++
			if _, err := svc.RunWorkload(ctx, w, core.LevelStack, s, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	after := svc.Stats()
	if after.Registry.Builds != before.Registry.Builds {
		b.Fatalf("steady state rebuilt artifacts: %d -> %d builds",
			before.Registry.Builds, after.Registry.Builds)
	}
}

// BenchmarkServeBatch measures the same warm mixed workload as
// BenchmarkServeConcurrent but admitted through the batch path, 16 runs per
// slot acquisition.  ns/op is per RUN in both benchmarks, so the difference
// between them is exactly the amortised per-request overhead — the number
// the batching half of the fleet design exists to shrink.
func BenchmarkServeBatch(b *testing.B) {
	cfg := benchConfig()
	svc := service.New(service.Options{})
	ctx := context.Background()
	workloads := []string{"loopsum", "fib", "sieve"}
	strategies := sim.Strategies()
	for _, w := range workloads {
		for _, s := range strategies {
			if _, err := svc.RunWorkload(ctx, w, core.LevelStack, s, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	before := svc.Stats()
	const batchSize = 16
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for {
			// Gather up to one batch worth of iterations, then run them all
			// under a single admission — the batch amortisation unit.
			n := 0
			for n < batchSize && pb.Next() {
				n++
			}
			if n == 0 {
				return
			}
			base := i
			err := svc.Batch(ctx, func(ctx context.Context, br *service.BatchRunner) error {
				for k := 0; k < n; k++ {
					w := workloads[(base+k)%len(workloads)]
					s := strategies[(base+k)/len(workloads)%len(strategies)]
					if _, err := br.RunWorkload(ctx, w, core.LevelStack, s, cfg); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			i += n
		}
	})
	b.StopTimer()
	after := svc.Stats()
	if after.Registry.Builds != before.Registry.Builds {
		b.Fatalf("steady state rebuilt artifacts: %d -> %d builds",
			before.Registry.Builds, after.Registry.Builds)
	}
}

// BenchmarkRunSharedPredecode measures a full simulated DTB run when the
// predecoded program is built once and reused, the shape of every sweep in
// the experiment engine.
func BenchmarkRunSharedPredecode(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := benchConfig()
	pp, err := sim.Predecode(dp, cfg.Degree)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPredecoded(pp, sim.WithDTB, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Archetype experiment benchmarks (generated-population studies) --------

// BenchmarkArchetypeGenerate measures seeded program generation per locality
// profile, including the oracle-validation retry loop.
func BenchmarkArchetypeGenerate(b *testing.B) {
	for _, a := range gen.Archetypes() {
		b.Run(a.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := a.Generate(int64(1 + i%16))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(p.Source)), "source-bytes")
				}
			}
		})
	}
}

// BenchmarkArchetypeSweep regenerates the archetype x DTB-capacity study on
// a reduced population: one profile, two programs, the full Figure 2 axis.
func BenchmarkArchetypeSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := core.ParallelEngine().ArchetypeSweep(context.Background(),
			[]string{"dispatch"}, 2, 1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkModelValidation regenerates the analytic-model error study on a
// reduced population: every archetype, one program each, four organisations
// measured per program.
func BenchmarkModelValidation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		v, err := core.ParallelEngine().ModelValidation(context.Background(), nil, 1, 1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(v.Samples) == 0 {
			b.Fatal("empty validation")
		}
	}
}

// benchWorkingSet is the working set the start-up benchmarks bring online:
// three workloads, each run once under DTB at the stack level.
var benchWorkingSet = []string{"loopsum", "fib", "sieve"}

// BenchmarkColdStart measures bringing the working set online in a fresh
// process with nothing persisted: every request pays the full compile
// pipeline (parse, translate, encode, predecode).
func BenchmarkColdStart(b *testing.B) {
	cfg := benchConfig()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := service.New(service.Options{})
		for _, w := range benchWorkingSet {
			if _, err := svc.RunWorkload(ctx, w, core.LevelStack, sim.WithDTB, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWarmStart measures the same working set in a restarted process:
// the artifacts (including recorded traces) are preloaded from the disk tier,
// so no request touches the compile pipeline.  The delta against
// BenchmarkColdStart is the value of persistence.
func BenchmarkWarmStart(b *testing.B) {
	cfg := benchConfig()
	ctx := context.Background()
	dir := b.TempDir()

	// Populate the store once, outside the timer.  Two runs per workload so
	// the recorded trace is synced into the container and the warm-started
	// process derives instead of re-executing.
	tier, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := service.New(service.Options{Store: tier})
	for _, w := range benchWorkingSet {
		for j := 0; j < 2; j++ {
			if _, err := seed.RunWorkload(ctx, w, core.LevelStack, sim.WithDTB, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}

	var svc *service.Service
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tier, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		svc = service.New(service.Options{Store: tier})
		if _, err := svc.Warmstart(-1); err != nil {
			b.Fatal(err)
		}
		for _, w := range benchWorkingSet {
			if _, err := svc.RunWorkload(ctx, w, core.LevelStack, sim.WithDTB, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if st := svc.Registry().Stats(); st.Builds != 0 {
		b.Fatalf("warm start rebuilt %d artifacts, want 0", st.Builds)
	}
}
